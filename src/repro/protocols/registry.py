"""Protocol registry: pluggable edge-consistency protocols by name.

The paper evaluates exactly one protocol family — the T-Cache detector of
§III with its ABORT / EVICT / RETRY strategies — but the scenario harness
(:mod:`repro.scenario`) is protocol-agnostic: it wires a cache per edge, a
database per backend, invalidation channels and clients, and aggregates
whatever the caches report. This module makes that seam explicit. A
:class:`ProtocolSpec` packages an edge-side cache constructor plus optional
backend-side cooperation (a per-backend service such as a lock manager or a
version signer), registered under a stable name that :class:`~repro.scenario.spec.EdgeSpec`
can reference the same way it references a :class:`~repro.cache.kinds.CacheKind`
today.

Built-in protocols (registered by :mod:`repro.protocols.builtin` on package
import):

``tcache-detector``
    The paper's detector (incumbent; bit-identical to the historical
    ``CacheKind.TCACHE`` path).
``multiversion`` / ``ttl`` / ``plain``
    The other historical cache kinds, exposed under protocol names so the
    registry is the single construction seam.
``causal``
    Per-session causal floors with client migration between edges
    (CausalMesh-style); see :mod:`repro.protocols.causal`.
``verified-read``
    Backend-signed version vectors verified before every serve
    (TransEdge-style); see :mod:`repro.protocols.verified`.
``locking``
    Pessimistic S/X coherence over :class:`~repro.db.locks.LockManager` —
    the zero-inconsistency / high-latency bound; see
    :mod:`repro.protocols.locking`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.cache.base import CacheServer
    from repro.db.database import Database
    from repro.scenario.spec import EdgeSpec
    from repro.sim.core import Simulator

__all__ = [
    "ProtocolSpec",
    "register_protocol",
    "get_protocol",
    "protocol_names",
    "protocol_for_edge",
]

#: Maps the historical ``CacheKind`` values to their registry names, so the
#: scenario runner can resolve every edge — with or without an explicit
#: ``protocol`` — through one code path.
_KIND_TO_PROTOCOL = {
    "tcache": "tcache-detector",
    "multiversion": "multiversion",
    "ttl": "ttl",
    "plain": "plain",
}


@dataclass(frozen=True, slots=True)
class ProtocolSpec:
    """One registered edge-consistency protocol.

    ``build_cache(sim, database, edge, service)`` constructs the edge-side
    cache; ``service`` is the memoised result of ``backend_service(sim,
    database)`` for the backend this edge reads from (``None`` when the
    protocol declares no backend-side cooperation). The scenario runner
    builds at most one service per ``(protocol, backend)`` pair, so edges
    sharing a backend share its service — that is what makes lock coherence
    and cross-edge causal migration possible.
    """

    name: str
    family: str
    description: str
    build_cache: Callable[["Simulator", "Database", "EdgeSpec", object | None], "CacheServer"]
    backend_service: Callable[["Simulator", "Database"], object] | None = None
    #: Protocols that guarantee serializable read-only transactions by
    #: construction (the pessimistic bound); asserted by the property suite.
    zero_inconsistency: bool = field(default=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("protocol name must be non-empty")
        if not self.family:
            raise ConfigurationError(f"protocol {self.name!r}: family must be non-empty")


_REGISTRY: dict[str, ProtocolSpec] = {}


def register_protocol(spec: ProtocolSpec) -> ProtocolSpec:
    """Add ``spec`` to the registry; duplicate names fail loudly."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(
            f"protocol {spec.name!r} is already registered"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_protocol(name: str) -> ProtocolSpec:
    """Resolve a protocol by name, listing the registered names on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; registered protocols: "
            f"{', '.join(protocol_names())}"
        ) from None


def protocol_names() -> tuple[str, ...]:
    """All registered protocol names, sorted for stable error messages."""
    return tuple(sorted(_REGISTRY))


def protocol_for_edge(edge: "EdgeSpec") -> ProtocolSpec:
    """The protocol an edge runs: explicit ``protocol`` or its cache kind."""
    if edge.protocol is not None:
        return get_protocol(edge.protocol)
    return get_protocol(_KIND_TO_PROTOCOL[edge.cache_kind.value])
