"""Built-in protocol registrations.

Imported (once) by :mod:`repro.protocols`; every constructor here matches
the historical ``_make_cache`` dispatch in :mod:`repro.scenario.runner`
argument-for-argument, which is what keeps the ``tcache-detector`` /
``multiversion`` / ``ttl`` / ``plain`` paths bit-identical to the
pre-registry behaviour (golden-tested).
"""

from __future__ import annotations

from repro.cache.base import CacheServer
from repro.cache.ttl import TTLCache
from repro.core.tcache import TCache
from repro.protocols.causal import CausalCache, CausalService
from repro.protocols.locking import LockCoherentCache, LockingService
from repro.protocols.registry import ProtocolSpec, register_protocol
from repro.protocols.verified import (
    DEFAULT_FRESHNESS,
    VerifiedReadCache,
    VerifiedReadService,
)

__all__ = ["register_builtins"]


def _build_tcache(sim, database, edge, service):
    return TCache(
        sim,
        database,
        strategy=edge.strategy,
        capacity=edge.cache_capacity,
        deplist_limit=edge.deplist_limit,
        name=edge.name,
    )


def _build_multiversion(sim, database, edge, service):
    from repro.core.multiversion import MultiversionTCache

    return MultiversionTCache(
        sim,
        database,
        capacity=edge.cache_capacity,
        deplist_limit=edge.deplist_limit,
        name=edge.name,
    )


def _build_ttl(sim, database, edge, service):
    return TTLCache(sim, database, ttl=edge.ttl, capacity=edge.cache_capacity, name=edge.name)


def _build_plain(sim, database, edge, service):
    return CacheServer(sim, database, capacity=edge.cache_capacity, name=edge.name)


def _build_causal(sim, database, edge, service):
    return CausalCache(
        sim, database, service=service, capacity=edge.cache_capacity, name=edge.name
    )


def _build_verified(sim, database, edge, service):
    return VerifiedReadCache(
        sim,
        database,
        service=service,
        freshness=edge.ttl if edge.ttl is not None else DEFAULT_FRESHNESS,
        capacity=edge.cache_capacity,
        name=edge.name,
    )


def _build_locking(sim, database, edge, service):
    return LockCoherentCache(
        sim, database, service=service, capacity=edge.cache_capacity, name=edge.name
    )


def register_builtins() -> None:
    register_protocol(
        ProtocolSpec(
            name="tcache-detector",
            family="detector",
            description="The paper's T-Cache dependency detector (§III) with "
            "its ABORT/EVICT/RETRY strategies — the incumbent.",
            build_cache=_build_tcache,
        )
    )
    register_protocol(
        ProtocolSpec(
            name="multiversion",
            family="detector",
            description="Multiversion T-Cache: RETRY strategy over a short "
            "per-key version history.",
            build_cache=_build_multiversion,
        )
    )
    register_protocol(
        ProtocolSpec(
            name="ttl",
            family="best-effort",
            description="Plain TTL cache: bounded staleness, no detection.",
            build_cache=_build_ttl,
        )
    )
    register_protocol(
        ProtocolSpec(
            name="plain",
            family="best-effort",
            description="Invalidation-only cache with no consistency checks.",
            build_cache=_build_plain,
        )
    )
    register_protocol(
        ProtocolSpec(
            name="causal",
            family="causal",
            description="Per-session causal floors with client migration "
            "between edges (CausalMesh-style); refreshes instead of aborting.",
            build_cache=_build_causal,
            backend_service=CausalService,
        )
    )
    register_protocol(
        ProtocolSpec(
            name="verified-read",
            family="verified",
            description="Backend-signed version proofs with a freshness "
            "bound, HMAC-verified before every serve (TransEdge-style).",
            build_cache=_build_verified,
            backend_service=VerifiedReadService,
        )
    )
    register_protocol(
        ProtocolSpec(
            name="locking",
            family="pessimistic",
            description="Shared/exclusive coherence over the wound-wait "
            "LockManager: serializable reads, backend round trip per read.",
            build_cache=_build_locking,
            backend_service=LockingService,
            zero_inconsistency=True,
        )
    )
