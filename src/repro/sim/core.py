"""Event loop and wait primitives for the simulation kernel.

The design follows the classic event-list pattern: a heap of
``(time, sequence, callback)`` entries and a monotonically advancing float
clock. Components never sleep or block; they schedule callbacks or, more
conveniently, run as generator :class:`~repro.sim.process.Process` objects
that yield the wait primitives defined here.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Simulator", "Event", "Timeout", "AnyOf", "AllOf"]


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail` makes
    it *triggered* and schedules its callbacks to run at the current
    simulation time. Triggering twice is an error — occurrences in a
    discrete-event simulation happen exactly once.
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "_ok", "_value")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._callbacks: list[Callable[[Event], None]] = []
        self._triggered = False
        self._ok = True
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        self._trigger(ok=True, value=value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception instance")
        self._trigger(ok=False, value=exception)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` once the event triggers.

        If the event already triggered, the callback runs at the current
        simulation time (not retroactively).
        """
        if self._triggered:
            self.sim.schedule(0.0, lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def _trigger(self, *, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.sim.schedule(0.0, lambda cb=callback: cb(self))


class Timeout(Event):
    """An event that triggers automatically after ``delay`` sim-seconds."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        sim.schedule(delay, lambda: self.succeed(value))


class AnyOf(Event):
    """Triggers as soon as any of the given events triggers.

    The value is the first triggering event. A failure of any child fails
    the composite.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: list[Event]) -> None:
        super().__init__(sim)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(event)
        else:
            self.fail(event.value)


class AllOf(Event):
    """Triggers once every one of the given events has triggered.

    The value is the list of child values in construction order. The first
    child failure fails the composite immediately.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: list[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self._children:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child.value for child in self._children])


class Simulator:
    """Heap-based discrete-event scheduler with a float clock.

    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(2.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [2.5]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` sim-seconds from now.

        Ties are broken by insertion order, which keeps runs deterministic.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._sequence), callback))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def any_of(self, events: list[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: list[Event]) -> AllOf:
        return AllOf(self, events)

    def process(self, generator) -> "Process":  # noqa: ANN001 - documented in process.py
        """Start a generator as a cooperative process (see ``sim.process``)."""
        from repro.sim.process import Process

        return Process(self, generator)

    def run(self, until: float | None = None) -> None:
        """Execute events in time order.

        Without ``until`` the loop drains the queue. With ``until`` the loop
        stops once the next event would fire strictly after ``until`` and the
        clock is advanced to exactly ``until``.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            while self._queue:
                time, _, callback = self._queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                self._now = time
                callback()
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute a single event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        self._now = time
        callback()
        return True

    @property
    def pending_events(self) -> int:
        return len(self._queue)
