"""Event loop and wait primitives for the simulation kernel.

The design follows the classic event-list pattern — a heap of
``(time, sequence, callback, arg)`` entries and a monotonically advancing
float clock — with one refinement for the dominant case: zero-delay
scheduling. Every event trigger, every callback added after a trigger, and
every process start fires "now"; pushing those through the heap paid an
``O(log n)`` push/pop plus a closure allocation per occurrence. They go
through a FIFO *immediate queue* (a deque) instead, merged with the heap by
the shared ``(time, sequence)`` order, so the executed event order — and
therefore every seeded artifact — is identical to the pure-heap kernel's.

``schedule`` also takes an optional single ``arg`` so hot callers
(:class:`Event` triggers, :class:`Timeout`, :class:`Process` resumption, the
channel delivery path) can pass a bound method plus its argument instead of
allocating a closure per event.

Implementation note: the trigger/timeout fast paths below intentionally
duplicate :meth:`Simulator.schedule`'s zero-delay branch (an inline sequence
bump plus a deque append) rather than calling it — these run once per event
and the call overhead was a measurable slice of every figure experiment.
Any change to the queueing discipline must be applied to ``schedule`` *and*
the inlined sites; ``tests/unit/test_sim_core.py`` pins the shared
``(time, sequence)`` ordering contract.

Components never sleep or block; they schedule callbacks or, more
conveniently, run as generator :class:`~repro.sim.process.Process` objects
that yield the wait primitives defined here.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable

from repro.errors import SimulationError
from repro.telemetry import active_tracer as _active_tracer

__all__ = ["Simulator", "Event", "Timeout", "AnyOf", "AllOf"]


class _NoArg:
    """Sentinel: ``schedule`` without an argument calls ``callback()``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<no-arg>"


_NO_ARG = _NoArg()


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail` makes
    it *triggered* and schedules its callbacks to run at the current
    simulation time. Triggering twice is an error — occurrences in a
    discrete-event simulation happen exactly once.
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "_ok", "_value")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._callbacks: list[Callable[[Event], None]] = []
        self._triggered = False
        self._ok = True
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        # The hot path of the whole kernel (every timeout and process exit
        # lands here): _trigger and the zero-delay schedule are inlined.
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            sim = self.sim
            sequence = sim._sequence
            immediate = sim._immediate
            for callback in callbacks:
                immediate.append((sequence, callback, self))
                sequence += 1
            sim._sequence = sequence
        return self

    def fail(self, exception: BaseException) -> "Event":
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception instance")
        self._trigger(ok=False, value=exception)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` once the event triggers.

        If the event already triggered, the callback runs at the current
        simulation time (not retroactively).
        """
        if self._triggered:
            sim = self.sim
            sequence = sim._sequence
            sim._sequence = sequence + 1
            sim._immediate.append((sequence, callback, self))
        else:
            self._callbacks.append(callback)

    def _trigger(self, *, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._ok = ok
        self._value = value
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            sim = self.sim
            sequence = sim._sequence
            immediate = sim._immediate
            for callback in callbacks:
                immediate.append((sequence, callback, self))
                sequence += 1
            sim._sequence = sequence


class Timeout(Event):
    """An event that triggers automatically after ``delay`` sim-seconds."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Event.__init__ and schedule(delay, self.succeed, value), inlined:
        # one Timeout is created per client arrival gap, per read gap and
        # per 2PC phase delay.
        self.sim = sim
        self._callbacks = []
        self._triggered = False
        self._ok = True
        self._value = None
        self.delay = delay
        sequence = sim._sequence
        sim._sequence = sequence + 1
        if delay == 0.0:
            sim._immediate.append((sequence, self.succeed, value))
        else:
            heapq.heappush(
                sim._queue, (sim.now + delay, sequence, self.succeed, value)
            )


class AnyOf(Event):
    """Triggers as soon as any of the given events triggers.

    The value is the first triggering event. A failure of any child fails
    the composite.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: list[Event]) -> None:
        super().__init__(sim)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(event)
        else:
            self.fail(event.value)


class AllOf(Event):
    """Triggers once every one of the given events has triggered.

    The value is the list of child values in construction order. The first
    child failure fails the composite immediately.

    ``AllOf`` takes ownership of ``events`` and does not copy it: direct
    constructors must pass a fresh list they will not mutate afterwards.
    The public :meth:`Simulator.all_of` wrapper copies on behalf of its
    callers.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: list[Event]) -> None:
        super().__init__(sim)
        self._children = events
        self._remaining = len(events)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child.value for child in self._children])


class Simulator:
    """Discrete-event scheduler: a heap plus an immediate FIFO, one clock.

    Zero-delay work (the bulk of a run: event triggers, process wake-ups)
    lands in the FIFO; timed work lands in the heap. Both draw sequence
    numbers from one shared counter and the loop executes strictly in
    ``(time, sequence)`` order, so the interleaving is exactly the one a
    single heap would produce — ties broken by insertion order, runs
    deterministic.

    ``now`` is a plain (read-only by convention) attribute, not a property:
    nearly every component reads the clock on every event, and descriptor
    dispatch was measurable. Only the run loop may assign it.

    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(2.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [2.5]
    """

    def __init__(self) -> None:
        #: Current simulated time in seconds. Assigned only by the event loop.
        self.now = 0.0
        self._queue: list[tuple[float, int, Callable[..., None], Any]] = []
        self._immediate: deque[tuple[int, Callable[..., None], Any]] = deque()
        self._sequence = 0
        self._running = False
        #: Callbacks executed so far, for throughput (events/sec) reporting.
        self.events_executed = 0
        #: The thread's active telemetry tracer, captured once at
        #: construction. ``None`` on every untraced run, so instrumentation
        #: sites across the stack pay one attribute load plus an ``is None``
        #: test — the zero-cost-when-off contract.
        self._tracer = _active_tracer()

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        arg: Any = _NO_ARG,
    ) -> None:
        """Run ``callback`` (or ``callback(arg)``) ``delay`` sim-seconds from now.

        Ties are broken by insertion order, which keeps runs deterministic.
        Passing ``arg`` lets hot paths hand over a bound method plus its
        argument instead of allocating a closure per event.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        sequence = self._sequence
        self._sequence = sequence + 1
        if delay == 0.0:
            self._immediate.append((sequence, callback, arg))
        else:
            heapq.heappush(
                self._queue, (self.now + delay, sequence, callback, arg)
            )

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def any_of(self, events: list[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: list[Event]) -> AllOf:
        # Copy at the public boundary: AllOf takes ownership of its list,
        # and callers of this API may reuse theirs.
        return AllOf(self, list(events))

    def process(self, generator) -> "Process":  # noqa: ANN001 - documented in process.py
        """Start a generator as a cooperative process (see ``sim.process``)."""
        return Process(self, generator)

    def run(self, until: float | None = None) -> None:
        """Execute events in ``(time, sequence)`` order.

        Without ``until`` the loop drains both queues. With ``until`` the
        loop stops once the next event would fire strictly after ``until``
        and the clock is advanced to exactly ``until``.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        tracer = self._tracer
        if tracer is not None and tracer.wants("sim"):
            # Checked once per run() call, never per event: the traced loop
            # is a full duplicate so the untraced path stays branch-free.
            self._run_traced(until, tracer)
            return
        executed = 0
        immediate = self._immediate
        queue = self._queue
        no_arg = _NO_ARG
        try:
            if until is not None and self.now > until:
                # Nothing may fire: even immediates sit beyond the horizon.
                return
            while True:
                if immediate:
                    # A heap entry wins only on an exact time tie with an
                    # older sequence number (heap times are never in the
                    # past, so `<= now` means `== now`).
                    if (
                        queue
                        and queue[0][0] <= self.now
                        and queue[0][1] < immediate[0][0]
                    ):
                        entry = heapq.heappop(queue)
                        self.now = entry[0]
                        callback, arg = entry[2], entry[3]
                    else:
                        _, callback, arg = immediate.popleft()
                elif queue:
                    time = queue[0][0]
                    if until is not None and time > until:
                        break
                    entry = heapq.heappop(queue)
                    self.now = time
                    callback, arg = entry[2], entry[3]
                else:
                    break
                executed += 1
                if arg is no_arg:
                    callback()
                else:
                    callback(arg)
            if until is not None and self.now < until:
                self.now = until
        finally:
            self.events_executed += executed
            self._running = False

    def _run_traced(self, until: float | None, tracer) -> None:
        """``run()``'s loop with a per-dispatch trace record.

        A deliberate duplicate (this module already duplicates its zero-delay
        branch for speed): callers only reach it through ``run()``, which has
        set ``_running``. Callback names come from ``__qualname__`` — never
        ``repr``, whose memory addresses would break cross-process trace
        determinism.
        """
        executed = 0
        immediate = self._immediate
        queue = self._queue
        no_arg = _NO_ARG
        emit = tracer.emit
        try:
            if until is not None and self.now > until:
                return
            while True:
                if immediate:
                    if (
                        queue
                        and queue[0][0] <= self.now
                        and queue[0][1] < immediate[0][0]
                    ):
                        entry = heapq.heappop(queue)
                        self.now = entry[0]
                        callback, arg = entry[2], entry[3]
                    else:
                        _, callback, arg = immediate.popleft()
                elif queue:
                    time = queue[0][0]
                    if until is not None and time > until:
                        break
                    entry = heapq.heappop(queue)
                    self.now = time
                    callback, arg = entry[2], entry[3]
                else:
                    break
                executed += 1
                emit(
                    self.now,
                    "sim",
                    "dispatch",
                    {
                        "callback": getattr(
                            callback, "__qualname__", type(callback).__name__
                        )
                    },
                )
                if arg is no_arg:
                    callback()
                else:
                    callback(arg)
            if until is not None and self.now < until:
                self.now = until
        finally:
            self.events_executed += executed
            tracer.metrics.count("sim.events_dispatched", executed)
            self._running = False

    def step(self) -> bool:
        """Execute a single event; returns False when nothing is pending."""
        immediate = self._immediate
        queue = self._queue
        if immediate:
            if (
                queue
                and queue[0][0] <= self.now
                and queue[0][1] < immediate[0][0]
            ):
                time, _, callback, arg = heapq.heappop(queue)
                self.now = time
            else:
                _, callback, arg = immediate.popleft()
        elif queue:
            time, _, callback, arg = heapq.heappop(queue)
            self.now = time
        else:
            return False
        self.events_executed += 1
        tracer = self._tracer
        if tracer is not None and tracer.wants("sim"):
            tracer.emit(
                self.now,
                "sim",
                "dispatch",
                {"callback": getattr(callback, "__qualname__", type(callback).__name__)},
            )
            tracer.metrics.count("sim.events_dispatched")
        if arg is _NO_ARG:
            callback()
        else:
            callback(arg)
        return True

    @property
    def pending_events(self) -> int:
        return len(self._queue) + len(self._immediate)


# Imported last so that ``Simulator.process`` can reference the class without
# a per-call import: process.py subclasses Event, so the import must run
# after the definitions above regardless of which module loads first.
from repro.sim.process import Process  # noqa: E402
