"""Deterministic discrete-event simulation kernel.

The paper evaluates a live prototype; this reproduction replays the same
architecture inside a small, fully deterministic discrete-event simulator so
that every figure is seedable and runs in seconds. The kernel is a genuine
substrate with its own test suite:

* :class:`~repro.sim.core.Simulator` — heap-based event loop with a float
  simulated clock.
* :class:`~repro.sim.core.Event` / :class:`~repro.sim.core.Timeout` — wait
  primitives.
* :class:`~repro.sim.process.Process` — generator-based cooperative
  processes (clients, invalidation pipelines, cluster-shift schedulers).
* :class:`~repro.sim.channel.Channel` — unidirectional message channel with
  configurable latency and loss, used for DB→cache invalidations and
  cache→DB reads.
* :class:`~repro.sim.rng.RngStreams` — named, independently seeded random
  streams, plus the bounded-Pareto sampler from §V-A1.
"""

from repro.sim.channel import Channel, ChannelStats
from repro.sim.core import AllOf, AnyOf, Event, Simulator, Timeout
from repro.sim.process import Process
from repro.sim.rng import BoundedPareto, RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "BoundedPareto",
    "Channel",
    "ChannelStats",
    "Event",
    "Process",
    "RngStreams",
    "Simulator",
    "Timeout",
]
