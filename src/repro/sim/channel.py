"""Unidirectional message channels with latency and loss.

Models the paper's two asynchronous paths:

* **DB → cache invalidations** (§IV): best-effort; the experiment drops 20 %
  of invalidations uniformly at random, and delivery latency jitter may
  reorder the survivors — exactly the failure modes §II blames for stale
  caches.
* **cache → DB reads** (§III-B): reliable but slow (that is the whole reason
  edge caches exist); we model them with a latency-only channel.

A channel delivers by invoking a receiver callback inside the simulation, so
components stay decoupled: the database knows only that it `send()`s
invalidation records somewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.core import Simulator

__all__ = ["Channel", "ChannelStats"]


@dataclass(slots=True)
class ChannelStats:
    """Counters a channel maintains for the experiment reports."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    #: Sum of delivery latencies, for mean-latency reporting.
    total_latency: float = 0.0
    #: Messages delivered out of send order (a later send arriving earlier).
    reordered: int = 0
    _last_delivered_seq: int = field(default=-1, repr=False)

    @property
    def loss_ratio(self) -> float:
        return self.dropped / self.sent if self.sent else 0.0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.delivered if self.delivered else 0.0


class Channel:
    """Point-to-point channel with configurable latency and loss.

    ``latency`` may be a constant (seconds) or a callable drawing from the
    provided random generator — e.g. ``lambda rng: rng.exponential(0.05)``.
    ``loss_probability`` drops messages independently and uniformly, matching
    the experiment's 20 % invalidation loss; it may also be a callable of the
    current simulation time, which models the §II pathologies where loss is
    bursty ("due to a system configuration change, buffer saturation") —
    see :meth:`outage` for the common case of a total loss window.
    """

    def __init__(
        self,
        sim: Simulator,
        receiver: Callable[[Any], None],
        *,
        latency: float | Callable[[np.random.Generator], float] = 0.0,
        loss_probability: float | Callable[[float], float] = 0.0,
        rng: np.random.Generator | None = None,
        name: str = "channel",
    ) -> None:
        if not callable(loss_probability) and not 0.0 <= loss_probability <= 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1], got {loss_probability}"
            )
        uses_randomness = (
            callable(loss_probability) or loss_probability > 0.0 or callable(latency)
        )
        if uses_randomness and rng is None:
            raise ConfigurationError(
                f"channel {name!r} uses randomness but no rng was provided"
            )
        self._sim = sim
        self._receiver = receiver
        self._latency = latency
        self._loss_probability = loss_probability
        self._rng = rng
        self.name = name
        self.stats = ChannelStats()
        self._send_seq = 0
        #: Half-open outage windows [(start, end)] with total loss.
        self._outages: list[tuple[float, float]] = []

    def outage(self, start: float, end: float) -> None:
        """Drop every message sent within ``[start, end)`` sim-seconds.

        Models an invalidation-pipeline outage (configuration change,
        buffer saturation); composes with the base loss probability.
        """
        if end <= start:
            raise ConfigurationError(f"empty outage window [{start}, {end})")
        self._outages.append((start, end))

    def _current_loss(self) -> float:
        now = self._sim.now
        for start, end in self._outages:
            if start <= now < end:
                return 1.0
        if callable(self._loss_probability):
            probability = self._loss_probability(now)
            if not 0.0 <= probability <= 1.0:
                raise ConfigurationError(
                    f"loss_probability callable returned {probability}"
                )
            return probability
        return self._loss_probability

    def send(self, message: Any) -> bool:
        """Enqueue ``message``; returns False if the channel dropped it.

        Delivery happens by calling the receiver after the sampled latency.
        Nothing is delivered synchronously, even at latency zero, preserving
        the asynchrony the paper's protocol must tolerate.
        """
        self.stats.sent += 1
        sequence = self._send_seq
        self._send_seq += 1
        loss = self._current_loss()
        if loss >= 1.0 or (loss > 0.0 and self._rng.random() < loss):
            self.stats.dropped += 1
            tracer = self._sim._tracer
            if tracer is not None and tracer.wants("channel"):
                now = self._sim.now
                in_outage = any(start <= now < end for start, end in self._outages)
                tracer.emit(
                    now,
                    "channel",
                    "drop",
                    {"channel": self.name, "seq": sequence, "outage": in_outage},
                )
                tracer.metrics.count(
                    "channel.outage_drops" if in_outage else "channel.drops"
                )
            return False
        delay = self._latency(self._rng) if callable(self._latency) else self._latency
        if delay < 0:
            raise ConfigurationError(f"channel {self.name!r} sampled negative latency")
        self._sim.schedule(delay, self._deliver, (message, sequence, delay))
        return True

    def _deliver(self, packed: tuple[Any, int, float]) -> None:
        message, sequence, delay = packed
        self.stats.delivered += 1
        self.stats.total_latency += delay
        reordered = sequence < self.stats._last_delivered_seq
        if reordered:
            self.stats.reordered += 1
        else:
            self.stats._last_delivered_seq = sequence
        tracer = self._sim._tracer
        if tracer is not None and tracer.wants("channel"):
            tracer.emit(
                self._sim.now,
                "channel",
                "deliver",
                {
                    "channel": self.name,
                    "seq": sequence,
                    "latency_ms": delay * 1000.0,
                    "reordered": reordered,
                },
            )
            tracer.metrics.count("channel.delivered")
            tracer.metrics.observe("channel.latency_ms", delay * 1000.0)
        self._receiver(message)
