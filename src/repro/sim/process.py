"""Generator-based cooperative processes for the simulation kernel.

A *process* is a Python generator that yields :class:`~repro.sim.core.Event`
objects (most often :class:`~repro.sim.core.Timeout`). The process is resumed
with the event's value when the event triggers, mirroring how a thread would
block on I/O — but deterministically and with zero concurrency hazards.

Example::

    def client(sim, cache):
        while True:
            yield sim.timeout(0.002)          # inter-arrival gap
            value = cache.read("user:42")     # synchronous model call
            ...

    sim.process(client(sim, cache))
    sim.run(until=60.0)
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ProcessKilled, SimulationError
from repro.sim.core import Event, Simulator

__all__ = ["Process"]


class Process(Event):
    """Drives a generator, waking it whenever its yielded event triggers.

    A ``Process`` is itself an :class:`Event`: it triggers when the generator
    returns (successfully, with the ``return`` value) or raises (failure).
    That makes ``yield other_process`` a natural join operation.

    :meth:`_resume` doubles as the wait-completion callback — the triggered
    event is handed to it directly, which removes one function call and one
    bound-method allocation from every wake-up (the kernel's hottest chain).
    """

    __slots__ = ("_generator", "_alive", "_resume_callback")

    def __init__(self, sim: Simulator, generator: Generator[Event, Any, Any]) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                "Process requires a generator; did you forget to call the function?"
            )
        # Event.__init__, inlined: a Process is created per transaction.
        self.sim = sim
        self._callbacks = []
        self._triggered = False
        self._ok = True
        self._value = None
        self._generator = generator
        self._alive = True
        #: The bound method handed to every awaited event, allocated once.
        #: The traced variant is selected here, once per process, so the
        #: untraced resume chain carries no telemetry branch at all.
        tracer = sim._tracer
        if tracer is not None and tracer.wants("sim"):
            self._resume_callback = self._resume_traced
        else:
            self._resume_callback = self._resume
        # First resumption happens as a scheduled event so that process
        # start order matches creation order at the current instant.
        sequence = sim._sequence
        sim._sequence = sequence + 1
        sim._immediate.append((sequence, self._resume_callback, None))

    @property
    def alive(self) -> bool:
        return self._alive

    def kill(self) -> None:
        """Throw :class:`ProcessKilled` into the generator.

        A process may intercept the exception for cleanup; re-raising (or not
        catching) marks the process as failed unless it exits normally.
        """
        if not self._alive:
            return
        # Route the exception through the regular resume path by handing it
        # a synthetic failed event.
        failure = Event(self.sim)
        failure._triggered = True
        failure._ok = False
        failure._value = ProcessKilled("killed")
        self._resume(failure)

    def _resume_traced(self, event: Event | None = None) -> None:
        """Telemetry wrapper around :meth:`_resume` (installed per process).

        Named by the generator function's ``__name__`` — stable across
        processes, unlike any id-bearing repr.
        """
        sim = self.sim
        tracer = sim._tracer
        if tracer is not None:
            tracer.emit(
                sim.now,
                "sim",
                "process_resume",
                {"process": self._generator.__name__},
            )
            tracer.metrics.count("sim.process_resumes")
        self._resume(event)

    def _resume(self, event: Event | None = None) -> None:
        """Advance the generator with the outcome of ``event``.

        ``event`` is ``None`` exactly once, for the initial start. This is
        registered directly as the awaited event's callback, so the event's
        triggered state is already final when it runs.
        """
        if not self._alive:
            return
        generator = self._generator
        try:
            if event is None:
                target = generator.send(None)
            elif event._ok:
                target = generator.send(event._value)
            else:
                error = event._value
                if not isinstance(error, BaseException):
                    error = SimulationError(f"event failed with {error!r}")
                target = generator.throw(error)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except ProcessKilled as killed:
            self._alive = False
            self.succeed(killed)
            return
        except BaseException as exc:  # noqa: BLE001 - propagated via the event
            self._alive = False
            self.fail(exc)
            return

        if not isinstance(target, Event):
            self._alive = False
            error = SimulationError(
                f"process yielded {target!r}; processes must yield Event instances"
            )
            self.fail(error)
            return
        # target.add_callback(self._resume_callback), inlined.
        if target._triggered:
            sim = self.sim
            sequence = sim._sequence
            sim._sequence = sequence + 1
            sim._immediate.append((sequence, self._resume_callback, target))
        else:
            target._callbacks.append(self._resume_callback)
