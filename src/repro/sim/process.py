"""Generator-based cooperative processes for the simulation kernel.

A *process* is a Python generator that yields :class:`~repro.sim.core.Event`
objects (most often :class:`~repro.sim.core.Timeout`). The process is resumed
with the event's value when the event triggers, mirroring how a thread would
block on I/O — but deterministically and with zero concurrency hazards.

Example::

    def client(sim, cache):
        while True:
            yield sim.timeout(0.002)          # inter-arrival gap
            value = cache.read("user:42")     # synchronous model call
            ...

    sim.process(client(sim, cache))
    sim.run(until=60.0)
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ProcessKilled, SimulationError
from repro.sim.core import Event, Simulator

__all__ = ["Process"]


class Process(Event):
    """Drives a generator, waking it whenever its yielded event triggers.

    A ``Process`` is itself an :class:`Event`: it triggers when the generator
    returns (successfully, with the ``return`` value) or raises (failure).
    That makes ``yield other_process`` a natural join operation.
    """

    __slots__ = ("_generator", "_alive")

    def __init__(self, sim: Simulator, generator: Generator[Event, Any, Any]) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                "Process requires a generator; did you forget to call the function?"
            )
        super().__init__(sim)
        self._generator = generator
        self._alive = True
        # First resumption happens as a scheduled event so that process
        # start order matches creation order at the current instant.
        sim.schedule(0.0, lambda: self._resume(None, None))

    @property
    def alive(self) -> bool:
        return self._alive

    def kill(self) -> None:
        """Throw :class:`ProcessKilled` into the generator.

        A process may intercept the exception for cleanup; re-raising (or not
        catching) marks the process as failed unless it exits normally.
        """
        if not self._alive:
            return
        self._resume(None, ProcessKilled("killed"))

    def _resume(self, value: Any, exception: BaseException | None) -> None:
        if not self._alive:
            return
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except ProcessKilled as killed:
            self._alive = False
            self.succeed(killed)
            return
        except BaseException as exc:  # noqa: BLE001 - propagated via the event
            self._alive = False
            self.fail(exc)
            return

        if not isinstance(target, Event):
            self._alive = False
            error = SimulationError(
                f"process yielded {target!r}; processes must yield Event instances"
            )
            self.fail(error)
            return
        target.add_callback(self._on_wait_complete)

    def _on_wait_complete(self, event: Event) -> None:
        if event.ok:
            self._resume(event.value, None)
        else:
            value = event.value
            if isinstance(value, BaseException):
                self._resume(None, value)
            else:
                self._resume(None, SimulationError(f"event failed with {value!r}"))
