"""Named random streams and the bounded-Pareto sampler from §V-A1.

Determinism policy: a single experiment seed fans out into independently
seeded :class:`numpy.random.Generator` streams, one per concern (workload
choice, invalidation drops, client jitter, ...). Adding a new consumer of
randomness therefore never perturbs the draws seen by existing consumers,
which keeps figures stable across code changes.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RngStreams", "BoundedPareto"]


class RngStreams:
    """A family of independently seeded random generators.

    >>> streams = RngStreams(seed=7)
    >>> a = streams.stream("invalidation-drops")
    >>> b = streams.stream("workload")
    >>> a is streams.stream("invalidation-drops")
    True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first use.

        The per-stream seed mixes the experiment seed with a stable hash of
        the name (crc32 — stable across processes and Python versions, unlike
        built-in ``hash``).
        """
        generator = self._streams.get(name)
        if generator is None:
            name_digest = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(entropy=(self._seed, name_digest))
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def fork(self, salt: int) -> "RngStreams":
        """A fresh family for a sub-experiment (e.g. one sweep point)."""
        return RngStreams(self._seed * 1_000_003 + salt)


class BoundedPareto:
    """Bounded Pareto distribution on ``[low, high]`` with shape ``alpha``.

    §V-A1 chooses each object of a transaction "using a bounded Pareto
    distribution starting at the head of its cluster". Small ``alpha``
    (paper: 1/32) is nearly uniform over the whole range; large ``alpha``
    (paper: 4) concentrates mass on the first few values, confining accesses
    to the cluster.

    Sampling uses the closed-form inverse CDF:

        F(x)   = (1 - (L/x)^a) / (1 - (L/H)^a)
        F^-1(u) = L * (1 - u * (1 - (L/H)^a)) ** (-1/a)
    """

    def __init__(self, alpha: float, low: float = 1.0, high: float = 1000.0) -> None:
        if alpha <= 0:
            raise ConfigurationError(f"Pareto alpha must be positive, got {alpha}")
        if not 0 < low < high:
            raise ConfigurationError(f"need 0 < low < high, got low={low} high={high}")
        self.alpha = float(alpha)
        self.low = float(low)
        self.high = float(high)
        self._tail = 1.0 - (self.low / self.high) ** self.alpha
        # Constants of the inverse CDF, hoisted out of the per-draw path
        # (one draw per object of every transaction's access set).
        self._exponent = -1.0 / self.alpha
        self._low_offset = int(self.low)

    def sample(self, rng: np.random.Generator) -> float:
        """One draw in ``[low, high]``."""
        return self.low * (1.0 - rng.random() * self._tail) ** self._exponent

    def sample_offset(self, rng: np.random.Generator) -> int:
        """One draw quantised to a zero-based integer offset.

        A draw ``x`` in ``[1, high]`` maps to offset ``floor(x) - 1``, so the
        most probable draw (``x`` just above ``low=1``) is offset 0 — the
        head of the cluster.
        """
        # sample(), inlined.
        draw = self.low * (1.0 - rng.random() * self._tail) ** self._exponent
        return int(draw) - self._low_offset

    def cdf(self, x: float) -> float:
        """Exact CDF, used by distribution tests."""
        if x <= self.low:
            return 0.0
        if x >= self.high:
            return 1.0
        return (1.0 - (self.low / x) ** self.alpha) / self._tail

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoundedPareto(alpha={self.alpha}, low={self.low}, high={self.high})"
