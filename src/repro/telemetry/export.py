"""Trace export: deterministic JSONL plus a Chrome ``trace_event`` converter.

The JSONL layout isolates wall clock in exactly one place:

* line 1 — a header ``{"kind": "header", "schema": "repro.trace/1",
  "sweep": ..., "wall_clock_seconds": ...}``: the *only* line containing
  nondeterministic data;
* every following line — ``{"kind": "record", "point": <label>, "t":
  <sim time>, "cat": ..., "name": ..., "fields": {...}}``, emitted in
  spec-point order and, within a point, in emission order.

Because record lines carry sim time only, two traces of the same seeded
sweep compare byte-identical once the header's wall-clock field is dropped —
:func:`normalized_trace_lines` applies the same
:func:`repro.experiments.report.normalized_artifact` canonicalization the
artifact tests use, line by line.

The Chrome converter maps records onto the ``trace_event`` JSON format
(load the file in about://tracing or https://ui.perfetto.dev): one virtual
thread per sweep point, instants (``ph: "i"``) for point events, with sim
seconds scaled to trace microseconds.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

__all__ = [
    "TRACE_SCHEMA",
    "chrome_trace",
    "normalized_trace_lines",
    "sweep_trace_lines",
    "trace_jsonl_lines",
    "write_chrome_trace",
    "write_trace_jsonl",
]

TRACE_SCHEMA = "repro.trace/1"

_CANONICAL = {"separators": (",", ":"), "sort_keys": True}


def sweep_trace_lines(result) -> list[str]:
    """JSONL lines (no trailing newlines) for one traced SweepResult."""
    header = {
        "kind": "header",
        "schema": TRACE_SCHEMA,
        "sweep": result.spec.name,
        "wall_clock_seconds": result.wall_clock_seconds,
    }
    lines = [json.dumps(header, **_CANONICAL)]
    for point, point_result in zip(result.spec.points, result.results):
        trace = getattr(point_result, "trace", None)
        if not trace:
            continue
        label = point.label
        for record in trace:
            line: dict[str, Any] = {"kind": "record", "point": label}
            line.update(record)
            lines.append(json.dumps(line, **_CANONICAL))
    return lines


def trace_jsonl_lines(results: Iterable) -> list[str]:
    """JSONL lines for a sequence of traced SweepResults, in order."""
    lines: list[str] = []
    for result in results:
        lines.extend(sweep_trace_lines(result))
    return lines


def write_trace_jsonl(path, results: Iterable) -> int:
    """Write traced sweeps as JSONL; returns the number of lines written."""
    lines = trace_jsonl_lines(results)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
    return len(lines)


def normalized_trace_lines(lines: Iterable[str]) -> list[str]:
    """Canonicalize trace JSONL for comparison across runs/jobs/fleet.

    Parses each line and strips the nondeterministic fields through the
    same helper the artifact byte-identity tests use, so "identical modulo
    wall clock" means exactly the same thing for traces and artifacts.
    """
    from repro.experiments.report import normalized_artifact

    return [normalized_artifact(json.loads(line)) for line in lines if line.strip()]


def chrome_trace(lines: Iterable[str]) -> dict:
    """Convert trace JSONL lines into a Chrome ``trace_event`` document.

    Each sweep point becomes a virtual thread (named via ``M`` metadata
    events); records become instant events with ``ts`` in microseconds.
    """
    events: list[dict[str, Any]] = []
    thread_ids: dict[str, int] = {}
    for line in lines:
        if not line.strip():
            continue
        payload = json.loads(line)
        kind = payload.get("kind")
        if kind == "header":
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": 0,
                    "args": {"name": payload.get("sweep", "sweep")},
                }
            )
            continue
        if kind != "record":
            continue
        point = payload.get("point", "")
        tid = thread_ids.get(point)
        if tid is None:
            tid = thread_ids[point] = len(thread_ids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": point},
                }
            )
        event: dict[str, Any] = {
            "name": payload["name"],
            "cat": payload["cat"],
            "ph": "i",
            "s": "t",
            "ts": round(payload["t"] * 1e6, 3),
            "pid": 1,
            "tid": tid,
        }
        fields = payload.get("fields")
        if fields:
            event["args"] = fields
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, lines: Iterable[str]) -> int:
    """Write the Chrome trace document; returns the event count."""
    document = chrome_trace(lines)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return len(document["traceEvents"])
