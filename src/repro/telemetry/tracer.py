"""The Tracer: sim-time-keyed structured records plus the metrics feed.

A record is a compact tuple ``(sim_time, category, name, fields)`` — dict
conversion is deferred to export so the per-record cost during a run is one
tuple allocation and one list append. Categories let callers trace a slice
of the stack (``--trace`` enables everything; the kernel category is the
only one with meaningful volume, roughly one record per event executed).

Determinism rules every emitter must follow:

* key by sim time, never wall clock;
* name callbacks by ``__qualname__`` (module-stable), never ``repr``
  (embeds memory addresses, which differ across processes and runs);
* fields must be JSON-serializable primitives derived from simulation
  state only.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["Tracer", "CATEGORIES"]

#: Every category an instrumentation site may emit under.
CATEGORIES = frozenset(
    {"sim", "cache", "channel", "db", "sgt", "protocol"}
)


class Tracer:
    """Collects trace records and aggregates metrics for one sweep point."""

    __slots__ = ("point", "records", "metrics", "_categories")

    def __init__(
        self,
        *,
        point: str = "",
        categories: Iterable[str] | None = None,
    ) -> None:
        self.point = point
        self.records: list[tuple[float, str, str, dict[str, Any] | None]] = []
        self.metrics = MetricsRegistry()
        self._categories = CATEGORIES if categories is None else frozenset(categories)

    def wants(self, category: str) -> bool:
        return category in self._categories

    def emit(
        self,
        sim_time: float,
        category: str,
        name: str,
        fields: dict[str, Any] | None = None,
    ) -> None:
        """Append one record. Callers guard on ``wants`` when fields are
        expensive to build; plain sites just call through."""
        if category in self._categories:
            self.records.append((sim_time, category, name, fields))

    # Metrics forwarding — one handle serves both concerns at every site.

    def count(self, name: str, delta: int = 1) -> None:
        self.metrics.count(name, delta)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    def snapshot(self) -> dict:
        return self.metrics.snapshot()

    def record_dicts(self) -> list[dict[str, Any]]:
        """Records as export-ready dicts, in emission order."""
        out = []
        for sim_time, category, name, fields in self.records:
            record: dict[str, Any] = {"t": sim_time, "cat": category, "name": name}
            if fields:
                record["fields"] = fields
            out.append(record)
        return out
