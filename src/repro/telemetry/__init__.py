"""Deterministic observability spine: tracing, metrics, profiling hooks.

The telemetry layer threads one :class:`Tracer` through every layer of a
simulated run — kernel event dispatch, process resumption, cache
serve/refetch/evict, channel delivery and outage drops, backend reads, SGT
verdicts, and per-protocol decisions (wound aborts, causal floor refusals,
proof verification) — and aggregates the same instrumentation points into a
:class:`MetricsRegistry` of counters, gauges and exponential-bucket latency
histograms.

Two properties shape the whole design:

* **Determinism.** Every trace record is keyed by *sim time*, never wall
  clock; callbacks are named by ``__qualname__``, never ``repr`` (memory
  addresses differ across processes). Wall-clock stamps are isolated in a
  single JSONL header line per sweep, so the body of a trace is
  byte-identical across reruns, ``jobs=N`` fork pools, dispatch
  coordinators and the fleet daemon — the same contract the artifacts
  already honour, and tested the same way
  (:func:`repro.experiments.report.normalized_artifact`).

* **Zero cost when off.** Tracing is opt-in per sweep point. The kernel
  caches the active tracer once per :class:`~repro.sim.core.Simulator`
  (``sim._tracer is None`` on the untraced path) and every other
  instrumentation site guards on that same attribute, so the disabled
  overhead is one attribute load plus an ``is None`` test per *call site*,
  not per record. ``bench/suite.py``'s ``telemetry_overhead`` section
  measures the traced and untraced kernels against each other and keeps the
  disabled cost inside the budget.

Enablement travels in two layers. The CLI's ``--trace`` flag flips the
module-level flag via :func:`enable`; :func:`repro.experiments.sweep.run_sweep`
reads it and stamps ``trace=True`` onto every :class:`SweepPoint` it
executes — that flag rides the wire to dispatch workers and fleet daemons,
so remote executors trace without sharing our process. At execution time
:func:`capture` installs a thread-local tracer that
:class:`~repro.sim.core.Simulator` picks up at construction (thread-local,
not global, because the fleet integration tests run daemon, workers and
submitters as threads of one process).
"""

from __future__ import annotations

import contextlib
import threading

from repro.telemetry.metrics import MetricsRegistry, TELEMETRY_SCHEMA, validate_telemetry
from repro.telemetry.tracer import Tracer
from repro.telemetry.export import (
    TRACE_SCHEMA,
    chrome_trace,
    normalized_trace_lines,
    trace_jsonl_lines,
    write_chrome_trace,
    write_trace_jsonl,
)

__all__ = [
    "MetricsRegistry",
    "TELEMETRY_SCHEMA",
    "TRACE_SCHEMA",
    "Tracer",
    "active_tracer",
    "capture",
    "chrome_trace",
    "disable",
    "drain_recorded_sweeps",
    "enable",
    "enabled",
    "normalized_trace_lines",
    "record_sweep",
    "trace_jsonl_lines",
    "validate_telemetry",
    "write_chrome_trace",
    "write_trace_jsonl",
]

#: Module-level switch, set by the CLI's ``--trace`` flag. Read exactly once
#: per sweep (by ``run_sweep``), never on a hot path.
_ENABLED = False

_STATE = threading.local()

#: Traced SweepResults recorded by ``run_sweep`` for the CLI exporter, in
#: completion order. Guarded by ``_RECORDED_LOCK`` because fleet tests drive
#: sweeps from worker threads.
_RECORDED: list = []
_RECORDED_LOCK = threading.Lock()


def enable() -> None:
    """Turn tracing on for subsequently started sweeps."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn tracing off and drop any captured-but-unexported sweeps."""
    global _ENABLED
    _ENABLED = False
    with _RECORDED_LOCK:
        _RECORDED.clear()


def enabled() -> bool:
    return _ENABLED


def active_tracer() -> Tracer | None:
    """The tracer capturing the current thread's simulation, if any."""
    return getattr(_STATE, "tracer", None)


@contextlib.contextmanager
def capture(point_label: str, *, categories=None):
    """Install a fresh thread-local :class:`Tracer` for one sweep point.

    Yields the tracer; simulators constructed inside the block adopt it.
    """
    tracer = Tracer(point=point_label, categories=categories)
    previous = getattr(_STATE, "tracer", None)
    _STATE.tracer = tracer
    try:
        yield tracer
    finally:
        _STATE.tracer = previous


def record_sweep(result) -> None:
    """Hand a traced :class:`SweepResult` to the CLI exporter.

    ``run_sweep`` calls this for every traced sweep because experiment
    ``run()`` wrappers discard the SweepResult and return row views — the
    exporter would otherwise never see the trace records.
    """
    with _RECORDED_LOCK:
        _RECORDED.append(result)


def drain_recorded_sweeps() -> list:
    """Return and clear the traced sweeps recorded since the last drain."""
    with _RECORDED_LOCK:
        drained = list(_RECORDED)
        _RECORDED.clear()
    return drained
