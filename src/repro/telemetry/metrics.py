"""Counters, gauges and exponential-bucket histograms with a schema'd snapshot.

The registry is deliberately tiny and allocation-light: a counter bump is a
dict ``get``-add-store, a histogram observation is a bucket-index loop over
at most :data:`_BUCKET_COUNT` floats. Snapshots are sorted by name at every
level so the serialized section is canonical — two registries fed the same
observations in any order produce byte-identical JSON.

The ``repro.telemetry/1`` section embedded in artifacts holds only the
snapshot (aggregates); raw trace records never enter artifacts, which keeps
traced and untraced artifacts byte-identical once the telemetry key is
stripped (see :func:`repro.experiments.report.normalized_artifact`).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["MetricsRegistry", "TELEMETRY_SCHEMA", "validate_telemetry"]

TELEMETRY_SCHEMA = "repro.telemetry/1"

#: Exponential histogram bucket boundaries: powers of two spanning 1 µs to
#: ~65 s when observations are in milliseconds. Fixed (not adaptive) so the
#: bucket layout — and therefore the artifact bytes — never depends on the
#: data distribution.
_BUCKET_BASE = 0.001
_BUCKET_COUNT = 27
HISTOGRAM_BOUNDS: tuple[float, ...] = tuple(
    _BUCKET_BASE * (2.0**i) for i in range(_BUCKET_COUNT)
)


class _Histogram:
    """Exponential-bucket histogram: counts per bound plus sum/min/max."""

    __slots__ = ("buckets", "count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.buckets = [0] * (_BUCKET_COUNT + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        index = 0
        for bound in HISTOGRAM_BOUNDS:
            if value <= bound:
                break
            index += 1
        self.buckets[index] += 1

    def as_dict(self) -> dict:
        # [le, count] pairs for the non-empty prefix keeps sections compact;
        # the overflow bucket is keyed "+Inf" like Prometheus exposition.
        pairs: list[list] = []
        for index, count in enumerate(self.buckets):
            if count == 0:
                continue
            le = "+Inf" if index == _BUCKET_COUNT else HISTOGRAM_BOUNDS[index]
            pairs.append([le, count])
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": pairs,
        }


class MetricsRegistry:
    """Named counters, gauges and histograms with a canonical snapshot."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    def count(self, name: str, delta: int = 1) -> None:
        counters = self._counters
        counters[name] = counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = _Histogram()
        histogram.observe(value)

    def counter_value(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """The ``repro.telemetry/1`` section: sorted at every level."""
        return {
            "schema": TELEMETRY_SCHEMA,
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }


def _fail(message: str) -> None:
    raise ConfigurationError(f"invalid telemetry section: {message}")


def validate_telemetry(payload: object) -> dict:
    """Validate a ``repro.telemetry/1`` section, returning it on success.

    Hand-rolled (the container has no jsonschema); mirrors the shape checks
    of :func:`repro.experiments.protocol_race.validate_artifact`.
    """
    if not isinstance(payload, dict):
        _fail(f"section must be an object, got {type(payload).__name__}")
    schema = payload.get("schema")
    if schema != TELEMETRY_SCHEMA:
        _fail(f"schema must be {TELEMETRY_SCHEMA!r}, got {schema!r}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(payload.get(section), dict):
            _fail(f"{section} must be an object")
    for name, value in payload["counters"].items():
        if not isinstance(value, int) or isinstance(value, bool):
            _fail(f"counter {name!r} must be an integer, got {value!r}")
    for name, value in payload["gauges"].items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            _fail(f"gauge {name!r} must be a number, got {value!r}")
    for name, histogram in payload["histograms"].items():
        if not isinstance(histogram, dict):
            _fail(f"histogram {name!r} must be an object")
        for field in ("count", "sum", "min", "max", "buckets"):
            if field not in histogram:
                _fail(f"histogram {name!r} missing field {field!r}")
        count = histogram["count"]
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            _fail(f"histogram {name!r} count must be a non-negative integer")
        buckets = histogram["buckets"]
        if not isinstance(buckets, list):
            _fail(f"histogram {name!r} buckets must be a list")
        bucket_total = 0
        for pair in buckets:
            if not isinstance(pair, list) or len(pair) != 2:
                _fail(f"histogram {name!r} bucket entries must be [le, count] pairs")
            le, bucket_count = pair
            le_ok = le == "+Inf" or (
                not isinstance(le, bool) and isinstance(le, (int, float))
            )
            if not le_ok:
                _fail(f"histogram {name!r} bucket bound must be a number or '+Inf'")
            if not isinstance(bucket_count, int) or isinstance(bucket_count, bool):
                _fail(f"histogram {name!r} bucket count must be an integer")
            bucket_total += bucket_count
        if bucket_total != count:
            _fail(
                f"histogram {name!r} bucket counts sum to {bucket_total}, "
                f"expected count {count}"
            )
    return payload
