"""Reactions to a detected inconsistency (§III-B).

Upon detecting an inconsistency, the cache can take one of three paths:

* **ABORT** — abort the current transaction. Affects only the running
  transaction; no collateral damage.
* **EVICT** — abort the current transaction *and* evict the violating
  (too-old) object from the cache. Bets that stale entries are repeat
  offenders (§V-A4 confirms: uncommittable transactions drop to 28 % of
  their ABORT value).
* **RETRY** — if the violating object is the one being read right now
  (Equation 2), treat the access as a miss and serve it from the database;
  if the violating object was already returned earlier in the transaction
  (Equation 1), evict it and abort as in EVICT.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Strategy"]


class Strategy(Enum):
    """Inconsistency-handling strategy for the T-Cache server."""

    ABORT = "abort"
    EVICT = "evict"
    RETRY = "retry"

    @property
    def evicts_stale_entries(self) -> bool:
        """Whether the strategy removes the offending entry from the cache."""
        return self is not Strategy.ABORT

    @property
    def reads_through(self) -> bool:
        """Whether Equation 2 violations are repaired by a database read."""
        return self is Strategy.RETRY

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
