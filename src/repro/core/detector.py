"""The inconsistency checks of §III-B (Equations 1 and 2).

On a read of ``key_curr`` returning version ``ver_curr`` with dependency list
``deps_curr``, the cache checks the read against every previous read of the
same transaction:

* **Equation 1** — a previously read version ``v'`` of some key ``k`` is
  older than the version ``v`` the current read's dependency list expects::

      exists k, v, v': v > v' and (k, v) in depList_curr
                                and (k, v') in readSet

  Here the *previous* read is the stale one: the transaction already returned
  a value that the current read proves outdated.

* **Equation 2** — the version of the current read is older than the version
  expected by the dependencies (or direct reads) of a previous read::

      exists v: v > ver_curr and (key_curr, v) in readSet-with-deps

  Here the *current* read is the stale one: the cache entry for ``key_curr``
  predates a version some earlier read depends on.

The distinction matters to the strategies (§III-B): RETRY can repair an
Equation 2 violation by re-reading ``key_curr`` from the database, but an
Equation 1 violation poisons a value already handed to the client, so the
transaction must abort.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.deplist import DependencyList
from repro.core.records import TransactionContext
from repro.types import Key, Version

__all__ = ["InconsistencyReport", "check_read", "check_equation1", "check_equation2"]


@dataclass(frozen=True, slots=True)
class InconsistencyReport:
    """A detected dependency violation.

    ``stale_key`` names the object whose observed version is too old —
    the current read for Equation 2, an earlier read for Equation 1.
    """

    #: Which rule fired: 1 or 2.
    equation: int
    #: The object observed at a too-old version.
    stale_key: Key
    #: The too-old version that was observed.
    found_version: Version
    #: The minimum version the dependencies demand.
    required_version: Version
    #: The read whose dependency list raised the requirement.
    demanding_key: Key

    @property
    def stale_read_is_current(self) -> bool:
        """True when the *current* read is the stale one (Equation 2)."""
        return self.equation == 2


def check_equation2(
    context: TransactionContext, key_curr: Key, ver_curr: Version
) -> InconsistencyReport | None:
    """Is the current read older than what previous reads require?"""
    requirement = context.required_version(key_curr)
    if requirement is None:
        return None
    required, demanding_key = requirement
    if required > ver_curr:
        return InconsistencyReport(
            equation=2,
            stale_key=key_curr,
            found_version=ver_curr,
            required_version=required,
            demanding_key=demanding_key,
        )
    return None


def check_equation1(
    context: TransactionContext, key_curr: Key, deps_curr: DependencyList
) -> InconsistencyReport | None:
    """Does the current read prove some previous read stale?"""
    for entry in deps_curr:
        previous = context.version_read(entry.key)
        if previous is not None and entry.version > previous:
            return InconsistencyReport(
                equation=1,
                stale_key=entry.key,
                found_version=previous,
                required_version=entry.version,
                demanding_key=key_curr,
            )
    return None


def check_repeated_read(
    context: TransactionContext, key_curr: Key, ver_curr: Version
) -> InconsistencyReport | None:
    """Non-repeatable read: the same key was read earlier at an *older*
    version.

    Equation 2 covers the mirror case (earlier read newer than the current
    one). Here the earlier read is the stale one — no serialization point
    can expose two versions of the same object to one transaction — so the
    violation is classified like Equation 1: the value already returned is
    poisoned and the transaction must abort.
    """
    previous = context.version_read(key_curr)
    if previous is not None and ver_curr > previous:
        return InconsistencyReport(
            equation=1,
            stale_key=key_curr,
            found_version=previous,
            required_version=ver_curr,
            demanding_key=key_curr,
        )
    return None


def check_read(
    context: TransactionContext,
    key_curr: Key,
    ver_curr: Version,
    deps_curr: DependencyList,
) -> InconsistencyReport | None:
    """Run all checks for a read, Equation 2 first.

    Equation 2 is checked first because its violation is repairable by
    RETRY; if both violations exist, repairing the current read first is
    strictly better — the Equation 1 check then runs against the fresh
    value's dependency list inside the retry path.
    """
    # The three checks are inlined (rather than delegated to the functions
    # above, which remain the documented/testable forms) because this runs
    # once per transactional read and is dominated by call overhead. The
    # fast path — no violation — is three dict probes and a deplist scan.
    requirement = context.requirements.get(key_curr)
    if requirement is not None and requirement[0] > ver_curr:
        return InconsistencyReport(
            equation=2,
            stale_key=key_curr,
            found_version=ver_curr,
            required_version=requirement[0],
            demanding_key=requirement[1],
        )
    previous = context.read_versions.get(key_curr)
    if previous is not None and ver_curr > previous:
        return InconsistencyReport(
            equation=1,
            stale_key=key_curr,
            found_version=previous,
            required_version=ver_curr,
            demanding_key=key_curr,
        )
    read_versions = context.read_versions
    for entry in deps_curr:
        previous = read_versions.get(entry.key)
        if previous is not None and entry.version > previous:
            return InconsistencyReport(
                equation=1,
                stale_key=entry.key,
                found_version=previous,
                required_version=entry.version,
                demanding_key=key_curr,
            )
    return None
