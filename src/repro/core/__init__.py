"""The paper's primary contribution: dependency tracking and T-Cache.

* :mod:`repro.core.deplist` — bounded, LRU-pruned dependency lists (§III-A).
* :mod:`repro.core.records` — per-transaction read records kept by the cache.
* :mod:`repro.core.detector` — the Eq. 1 / Eq. 2 inconsistency checks (§III-B).
* :mod:`repro.core.strategies` — ABORT / EVICT / RETRY reactions.
* :mod:`repro.core.tcache` — the T-Cache server tying it all together.
"""

from repro.core.deplist import DependencyList
from repro.core.detector import InconsistencyReport, check_read
from repro.core.records import ReadRecord, TransactionContext
from repro.core.strategies import Strategy
from repro.core.tcache import TCache

__all__ = [
    "DependencyList",
    "InconsistencyReport",
    "ReadRecord",
    "Strategy",
    "TCache",
    "TransactionContext",
    "check_read",
]
