"""The T-Cache server: a transactional read-only interface over an edge cache.

This is the architecture of §III. The cache interacts with the database
exactly like a consistency-unaware cache — single-entry reads on misses,
asynchronous (lossy) invalidation upcalls — but additionally stores each
object's version and dependency list, keeps a record per open read-only
transaction, and checks every read against the §III-B equations. A detected
violation triggers the configured :class:`~repro.core.strategies.Strategy`.

Detection is *best effort*: bounded dependency lists can omit the entry that
would reveal a violation, in which case a stale value slips through — the
consistency monitor quantifies how often. With unbounded lists and an
unbounded cache, no violation escapes (Theorem 1; property-tested in
``tests/property/test_theorem1.py``).
"""

from __future__ import annotations

from repro.cache.base import BackendReader, CacheServer
from repro.core.deplist import DependencyList
from repro.core.detector import InconsistencyReport, check_equation1, check_read
from repro.core.records import TransactionContext
from repro.core.strategies import Strategy
from repro.errors import ConfigurationError, InconsistencyDetected
from repro.sim.core import Simulator
from repro.types import (
    Key,
    ReadOnlyTransactionRecord,
    TransactionOutcome,
    TxnId,
    VersionedValue,
)

__all__ = ["TCache"]


class TCache(CacheServer):
    """Transaction-aware edge cache with dependency-based detection.

    Parameters mirror the paper's experimental knobs:

    * ``strategy`` — reaction to a detected inconsistency (§III-B).
    * ``capacity`` — optional entry bound; ``None`` reproduces the paper's
      "all objects fit" setting.
    * ``ttl`` — optional entry lifetime, usually ``None`` for T-Cache (the
      TTL baseline lives in :class:`~repro.cache.ttl.TTLCache`); the knob
      exists so hybrid configurations can be explored.
    * ``deplist_limit`` — optional per-cache cap on how many shipped
      dependency entries this cache *consults* (§VII: heterogeneous list
      bounds across edges). The database's bound caps what is stored and
      shipped; this caps what the edge checks. ``None`` consults everything.
    """

    def __init__(
        self,
        sim: Simulator,
        backend: BackendReader,
        *,
        strategy: Strategy = Strategy.ABORT,
        ttl: float | None = None,
        capacity: int | None = None,
        deplist_limit: int | None = None,
        name: str = "t-cache",
    ) -> None:
        if deplist_limit is not None and deplist_limit < 0:
            raise ConfigurationError(
                f"deplist_limit must be >= 0 or None, got {deplist_limit}"
            )
        super().__init__(sim, backend, ttl=ttl, capacity=capacity, name=name)
        self.strategy = strategy
        self.deplist_limit = deplist_limit
        self._contexts: dict[TxnId, TransactionContext] = {}
        #: Violations detected, by equation, for the experiment reports.
        self.detections_eq1 = 0
        self.detections_eq2 = 0
        #: Equation 2 violations repaired in place by RETRY.
        self.retries_resolved = 0

    # ------------------------------------------------------------------
    # Consistency hook
    # ------------------------------------------------------------------

    def _check_read(
        self,
        txn_id: TxnId,
        record: ReadOnlyTransactionRecord,
        entry: VersionedValue,
    ) -> tuple[VersionedValue, bool]:
        context = self._contexts.get(txn_id)
        if context is None:
            context = TransactionContext(txn_id=txn_id, start_time=self._sim.now)
            self._contexts[txn_id] = context

        deps = self._deps_of(entry)
        report = check_read(context, entry.key, entry.version, deps)
        if report is None:
            context.record_read(entry.key, entry.version, deps)
            return entry, False
        return self._handle_violation(txn_id, record, context, entry, deps, report)

    def _handle_violation(
        self,
        txn_id: TxnId,
        record: ReadOnlyTransactionRecord,
        context: TransactionContext,
        entry: VersionedValue,
        deps: DependencyList,
        report: InconsistencyReport,
    ) -> tuple[VersionedValue, bool]:
        self._count_detection(report)

        if self.strategy.reads_through and report.stale_read_is_current:
            # RETRY, Equation 2: the cached copy of the object being read is
            # stale — treat the access as a miss and serve it fresh.
            fresh = self._read_through(entry.key)
            fresh_deps = self._deps_of(fresh)
            # The fresh copy can still prove an *earlier* read stale.
            followup = check_equation1(context, fresh.key, fresh_deps)
            if followup is None:
                self.retries_resolved += 1
                context.record_read(fresh.key, fresh.version, fresh_deps)
                return fresh, True
            self._count_detection(followup)
            self._evict_stale(followup.stale_key)
            self._abort_with(txn_id, record, fresh.key, fresh.version, followup)

        if self.strategy.evicts_stale_entries:
            # EVICT always; RETRY for Equation 1 ("evict the stale object and
            # abort the transaction, as in EVICT").
            self._evict_stale(report.stale_key)

        self._abort_with(txn_id, record, entry.key, entry.version, report)
        raise AssertionError("unreachable")  # pragma: no cover

    def _deps_of(self, entry: VersionedValue) -> DependencyList:
        """The dependency entries this cache consults for ``entry``.

        With a ``deplist_limit`` only the first ``limit`` shipped entries
        are checked — lists arrive most-relevant-first under the database's
        pruning policy (most-recently-used first for the paper's LRU).
        """
        if self.deplist_limit is None:
            return DependencyList.from_trusted(entry.deps)
        return DependencyList.from_trusted(entry.deps[: self.deplist_limit])

    # ------------------------------------------------------------------
    # Strategy actions
    # ------------------------------------------------------------------

    def _read_through(self, key: Key) -> VersionedValue:
        self.stats.retries += 1
        fresh = self._backend.read_entry(key)
        self.storage.put(fresh, self._sim.now)
        return fresh

    def _evict_stale(self, key: Key) -> None:
        if self.storage.evict(key):
            self.stats.strategy_evictions += 1

    def _abort_with(
        self,
        txn_id: TxnId,
        record: ReadOnlyTransactionRecord,
        observed_key: Key,
        observed_version: int,
        report: InconsistencyReport,
    ) -> None:
        """Abort the transaction, reporting the full observed read set.

        The violating read never reaches the client, but its observed
        version is part of the evidence the monitor uses to classify the
        abort as necessary or unnecessary, so it is folded into the record.
        """
        record.reads.setdefault(observed_key, observed_version)
        self._finish(txn_id, TransactionOutcome.ABORTED)
        raise InconsistencyDetected(
            txn_id,
            report.stale_key,
            report.found_version,
            report.required_version,
            stale_read_is_current=report.stale_read_is_current,
        )

    def _count_detection(self, report: InconsistencyReport) -> None:
        if report.equation == 1:
            self.detections_eq1 += 1
        else:
            self.detections_eq2 += 1

    @property
    def detections(self) -> int:
        return self.detections_eq1 + self.detections_eq2

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _finish(self, txn_id: TxnId, outcome: TransactionOutcome) -> None:
        self._contexts.pop(txn_id, None)
        super()._finish(txn_id, outcome)
