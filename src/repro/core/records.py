"""Per-transaction read records kept by the T-Cache server (§III-B).

"To implement this interface, the cache maintains a record of each
transaction with its read values, their versions, and their dependency
lists." The record also pre-aggregates, per key, the strongest version
requirement implied by everything read so far, so that each new read is
checked in O(size of its dependency list) rather than O(reads × list size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.core.deplist import DependencyList
from repro.types import Key, TxnId, Version

__all__ = ["ReadRecord", "TransactionContext"]


class ReadRecord(NamedTuple):
    """One read the transaction performed: key, version seen, stored deps.

    One is appended per transactional read, so construction cost matters —
    hence a ``NamedTuple``.
    """

    key: Key
    version: Version
    deps: DependencyList


@dataclass(slots=True)
class TransactionContext:
    """Everything the cache remembers about one open read-only transaction."""

    txn_id: TxnId
    start_time: float
    reads: list[ReadRecord] = field(default_factory=list)
    #: Version at which each key was (last) read. §III-B's ``readSet``.
    read_versions: dict[Key, Version] = field(default_factory=dict)
    #: Strongest requirement on each key implied by prior reads: the maximum
    #: version expected either because the key itself was read at that
    #: version or because some prior read's dependency list demands it.
    #: Maps key -> (required version, key of the read that demanded it).
    requirements: dict[Key, tuple[Version, Key]] = field(default_factory=dict)

    def record_read(self, key: Key, version: Version, deps: DependencyList) -> None:
        """Fold a successful read into the record.

        Requirements are merged monotonically: only a strictly larger
        required version replaces an existing one, so the record always
        reflects the strongest constraint seen so far.
        """
        self.reads.append(ReadRecord(key, version, deps))
        prior = self.read_versions.get(key)
        if prior is None or version > prior:
            self.read_versions[key] = version

        # _require, inlined: this runs once per dependency entry of every
        # transactional read, and the call overhead dominated the work.
        requirements = self.requirements
        current = requirements.get(key)
        if current is None or version > current[0]:
            requirements[key] = (version, key)
        for entry in deps:
            entry_key = entry.key
            current = requirements.get(entry_key)
            if current is None or entry.version > current[0]:
                requirements[entry_key] = (entry.version, key)

    def _require(self, key: Key, version: Version, source: Key) -> None:
        current = self.requirements.get(key)
        if current is None or version > current[0]:
            self.requirements[key] = (version, source)

    def required_version(self, key: Key) -> tuple[Version, Key] | None:
        """The strongest requirement prior reads place on ``key``, if any."""
        return self.requirements.get(key)

    def version_read(self, key: Key) -> Version | None:
        return self.read_versions.get(key)

    @property
    def read_count(self) -> int:
        return len(self.reads)

    def keys_read(self) -> set[Key]:
        return set(self.read_versions)
