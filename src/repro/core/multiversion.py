"""Multiversion T-Cache: the §VI extension borrowed from TxCache.

"To improve the commit rate for read-only transactions, [TxCache] uses
multiversioning, where the cache holds several versions of an object and
enables the cache to choose a version that allows a transaction to commit.
This technique could also be used with our solution." (§VI-c)

This module implements that combination. The cache retains a short history
of versions per object (instead of only the latest). When a read would fail
Equation 1 — the incoming object's dependency list proves an *earlier* read
stale, which no read-through can repair — the cache searches its history for
an **older version of the incoming object** that satisfies every recorded
requirement and whose dependency list raises no new violation. Serving that
version keeps the transaction on a consistent (if slightly stale) snapshot
instead of aborting it.

Equation 2 violations (the incoming object itself is too old) are handled
with a read-through exactly like RETRY: only a *newer* version can satisfy
them, and the database has it.
"""

from __future__ import annotations

from collections import deque

from repro.cache.base import BackendReader
from repro.core.deplist import DependencyList
from repro.core.detector import InconsistencyReport, check_read
from repro.core.records import TransactionContext
from repro.core.strategies import Strategy
from repro.core.tcache import TCache
from repro.errors import ConfigurationError
from repro.sim.core import Simulator
from repro.types import Key, ReadOnlyTransactionRecord, TxnId, VersionedValue

__all__ = ["MultiversionTCache"]


class MultiversionTCache(TCache):
    """T-Cache that retains per-object version history to avoid aborts.

    ``history_depth`` bounds the retained versions per key (the newest one
    lives in the regular storage; older ones in the history ring). The
    strategy is effectively RETRY plus version selection; the inherited
    ``strategy`` attribute is fixed to RETRY for the Equation 2 path.
    """

    def __init__(
        self,
        sim: Simulator,
        backend: BackendReader,
        *,
        history_depth: int = 3,
        capacity: int | None = None,
        deplist_limit: int | None = None,
        name: str = "mv-t-cache",
    ) -> None:
        if history_depth < 1:
            raise ConfigurationError(
                f"history_depth must be >= 1, got {history_depth}"
            )
        super().__init__(
            sim,
            backend,
            strategy=Strategy.RETRY,
            capacity=capacity,
            deplist_limit=deplist_limit,
            name=name,
        )
        self.history_depth = history_depth
        self._history: dict[Key, deque[VersionedValue]] = {}
        #: Transactions saved from an Equation 1 abort by an older version.
        self.multiversion_serves = 0

    # ------------------------------------------------------------------
    # History maintenance
    # ------------------------------------------------------------------

    def _remember(self, entry: VersionedValue) -> None:
        history = self._history.get(entry.key)
        if history is None:
            history = deque(maxlen=self.history_depth)
            self._history[entry.key] = history
        if not any(kept.version == entry.version for kept in history):
            history.append(entry)

    def _fetch(self, key: Key) -> VersionedValue:
        entry = super()._fetch(key)
        self._remember(entry)
        return entry

    def read(self, txn_id: TxnId, key: Key, last_op: bool = False):
        # Every served entry enters the history, including plain hits, so
        # superseded versions stay findable after invalidations evict them
        # from the primary storage.
        cached = self.storage.get(key, self._sim.now)
        if cached is not None:
            self._remember(cached)
        return super().read(txn_id, key, last_op)

    def candidate_versions(self, key: Key) -> list[VersionedValue]:
        """Retained versions of ``key``, newest first."""
        history = self._history.get(key, ())
        return sorted(history, key=lambda entry: entry.version, reverse=True)

    # ------------------------------------------------------------------
    # Violation handling
    # ------------------------------------------------------------------

    def _handle_violation(
        self,
        txn_id: TxnId,
        record: ReadOnlyTransactionRecord,
        context: TransactionContext,
        entry: VersionedValue,
        deps: DependencyList,
        report: InconsistencyReport,
    ) -> tuple[VersionedValue, bool]:
        if not report.stale_read_is_current:
            # Equation 1: the fresh incoming entry indicts an earlier read.
            # An *older* retained version of the incoming object may satisfy
            # every requirement without raising the new one.
            for candidate in self.candidate_versions(entry.key):
                if candidate.version >= entry.version:
                    continue
                candidate_deps = self._deps_of(candidate)
                if check_read(context, candidate.key, candidate.version, candidate_deps) is None:
                    self.multiversion_serves += 1
                    context.record_read(
                        candidate.key, candidate.version, candidate_deps
                    )
                    return candidate, False
        return super()._handle_violation(
            txn_id, record, context, entry, deps, report
        )
