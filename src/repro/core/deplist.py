"""Bounded, LRU-pruned dependency lists (§III-A).

The database stores with each object ``o`` a list of ``k`` dependencies
``(d1, v1) ... (dk, vk)``: identifiers and versions of other objects that the
current version of ``o`` depends on. A read-only transaction that sees the
current version of ``o`` must not see ``di`` with a version smaller than
``vi``.

At commit time the database aggregates, over every entry of the read and
write sets, the entry's own ``(key, version)`` pair plus its stored
dependency list::

    full-dep-list <- U_{(key,ver,depList)} {(key, ver)} U depList

then discards entries subsumed by a newer version of the same object, prunes
to the target size *using LRU*, and stores the result with each write-set
object.

LRU interpretation
------------------
The paper prunes "using LRU" and §V-A3 explains the intended effect: "the
dependency list of an object o tends to include those objects that are
frequently accessed together with o. Dependencies in a new cluster
automatically push out dependencies that are now outside the cluster."

We realise that with an explicit recency order inside each list
(most-recent-first). When merging at commit:

* the ``(key, version)`` pairs of the objects the committing transaction
  itself accessed are *used now* — they take the most-recent positions
  (matching the paper's §III-A example where ``(o2, vt)`` is spliced in ahead
  of ``o2``'s inherited dependencies);
* inherited entries keep their relative staleness: an entry's recency rank is
  the best (smallest) position it held in any source list;
* pruning drops entries from the least-recent end.
"""

from __future__ import annotations

import zlib
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.types import DepEntry, Key, Version

__all__ = [
    "DependencyList",
    "UNBOUNDED",
    "PRUNING_POLICIES",
    "validate_pruning_policy",
]

#: Sentinel maximum length meaning "never prune" (Theorem 1 configuration).
UNBOUNDED: int = -1


def _lru_order(key: Key, ranks: dict, versions: dict) -> tuple:
    return (ranks[key], key)


def _newest_version_order(key: Key, ranks: dict, versions: dict) -> tuple:
    return (-versions[key], key)


def _random_order(key: Key, ranks: dict, versions: dict) -> tuple:
    return (zlib.crc32(key.encode("utf-8")), key)


_PRUNING_POLICIES: dict[str, Callable[..., tuple]] = {
    "lru": _lru_order,
    "newest-version": _newest_version_order,
    "random": _random_order,
}

#: Public view of the available pruning policies (the ablation axis).
PRUNING_POLICIES: tuple[str, ...] = tuple(sorted(_PRUNING_POLICIES))


def validate_pruning_policy(policy: str, *, owner: str = "") -> str:
    """Reject unknown pruning policies at configuration time.

    Shared by every config dataclass that carries a policy knob
    (``DatabaseConfig``, ``ColumnConfig``, ``ScenarioSpec``,
    ``BackendSpec``) so a typo fails where it is written, not deep inside
    dependency-list pruning. ``owner`` prefixes the message with the
    offending config's identity. Returns the policy unchanged.
    """
    if policy not in _PRUNING_POLICIES:
        prefix = f"{owner}: " if owner else ""
        raise ConfigurationError(
            f"{prefix}unknown pruning policy {policy!r}; choose from "
            f"{sorted(_PRUNING_POLICIES)}"
        )
    return policy


class DependencyList:
    """An immutable, recency-ordered list of ``(key, version)`` dependencies.

    The first entry is the most recently used. Instances are cheap value
    objects: merging returns a new list, and the hot-path lookup
    :meth:`required_version` is a dict access.
    """

    __slots__ = ("_entries", "_by_key")

    def __init__(self, entries: Iterable[DepEntry] = ()) -> None:
        ordered: list[DepEntry] = []
        by_key: dict[Key, Version] = {}
        for entry in entries:
            known = by_key.get(entry.key)
            if known is None:
                by_key[entry.key] = entry.version
                ordered.append(entry)
            elif entry.version > known:
                # Subsumption: keep the larger version at the *earlier*
                # (more recent) position the key already holds.
                by_key[entry.key] = entry.version
                ordered = [
                    DepEntry(entry.key, entry.version) if e.key == entry.key else e
                    for e in ordered
                ]
        self._entries: tuple[DepEntry, ...] = tuple(ordered)
        self._by_key = by_key

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def merge(
        cls,
        direct: Mapping[Key, Version],
        inherited: Sequence["DependencyList"],
        *,
        max_len: int,
        exclude: Key | None = None,
        pinned: frozenset[Key] | set[Key] | None = None,
        policy: str = "lru",
    ) -> "DependencyList":
        """The §III-A commit-time aggregation.

        ``direct`` maps each object the committing transaction accessed to
        the version a dependant must observe (the new version for writes, the
        version read for pure reads). ``inherited`` holds the dependency
        lists stored with those objects. ``exclude`` removes the self-entry
        when attaching the list to a particular write-set object — an object
        need not record a dependency on itself, and dropping it frees one of
        the ``k`` slots for useful information.

        ``pinned`` implements the §VII extension: keys the application
        declared semantically important (e.g. an album's ACL) outrank
        everything else and survive pruning as long as any source mentions
        them.

        ``policy`` selects the pruning order (an ablation knob; the paper
        uses LRU):

        * ``"lru"`` — recency: direct entries first ("used now"), inherited
          entries by the best position they held in any source list; ties
          broken by key for determinism.
        * ``"newest-version"`` — keep the entries with the largest versions,
          regardless of recency of use.
        * ``"random"`` — deterministic pseudo-random order (hash of the
          key), the no-information baseline.

        Subsumption keeps the maximum version per key in every policy.
        Finally the list is truncated to ``max_len``.
        """
        if max_len != UNBOUNDED and max_len < 0:
            raise ConfigurationError(f"max_len must be >= 0 or UNBOUNDED, got {max_len}")
        if policy not in _PRUNING_POLICIES:
            raise ConfigurationError(
                f"unknown pruning policy {policy!r}; choose from {sorted(_PRUNING_POLICIES)}"
            )

        best_rank: dict[Key, int] = {}
        best_version: dict[Key, Version] = {}

        for key, version in direct.items():
            best_rank[key] = -1
            best_version[key] = version

        for source in inherited:
            for position, entry in enumerate(source.entries):
                rank = best_rank.get(entry.key)
                if rank is None or position < rank:
                    # Direct entries keep rank -1 unconditionally.
                    if rank != -1:
                        best_rank[entry.key] = position
                version = best_version.get(entry.key)
                if version is None or entry.version > version:
                    best_version[entry.key] = entry.version

        if exclude is not None:
            best_rank.pop(exclude, None)
            best_version.pop(exclude, None)

        pinned = pinned or frozenset()
        if not pinned and policy == "lru":
            # Commit hot path (the paper's policy, no pinned keys): the
            # ``k not in pinned`` prefix is constant and the LRU order is
            # plain ``(rank, key)``, so sort tuples instead of calling a
            # key function per entry.
            ordered_keys = [
                key for _, key in sorted(
                    (rank, key) for key, rank in best_rank.items()
                )
            ]
        else:
            sort_key = _PRUNING_POLICIES[policy]
            ordered_keys = sorted(
                best_rank,
                key=lambda k: (k not in pinned, *sort_key(k, best_rank, best_version)),
            )
        if max_len != UNBOUNDED:
            ordered_keys = ordered_keys[:max_len]
        # One entry per key by construction; skip the constructor's dedup.
        return cls.from_trusted(
            [DepEntry(key, best_version[key]) for key in ordered_keys]
        )

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Key, Version]]) -> "DependencyList":
        """Build a list from ``(key, version)`` pairs in recency order."""
        return cls(DepEntry(key, version) for key, version in pairs)

    @classmethod
    def from_trusted(cls, entries: Sequence[DepEntry]) -> "DependencyList":
        """Wrap entries that are *already* deduplicated, skipping subsumption.

        The per-read hot path: every transactional cache read wraps the
        dependency tuple shipped with a :class:`~repro.types.VersionedValue`,
        and those tuples are the ``entries`` of a list this class built at
        commit time — one key per entry, subsumption already applied (a
        prefix slice of such a tuple keeps the invariant). Running the full
        constructor would re-dedupe an input that cannot contain duplicates.
        """
        instance = cls.__new__(cls)
        instance._entries = tuple(entries)
        # Built lazily: the hot consumers (the per-read §III-B checks)
        # iterate entries and never probe by key.
        instance._by_key = None
        return instance

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def entries(self) -> tuple[DepEntry, ...]:
        """Entries in recency order, most recent first."""
        return self._entries

    def _mapping(self) -> dict[Key, Version]:
        """Key -> version index, built on first by-key probe."""
        by_key = self._by_key
        if by_key is None:
            by_key = self._by_key = {
                entry.key: entry.version for entry in self._entries
            }
        return by_key

    def required_version(self, key: Key) -> Version | None:
        """The minimum version of ``key`` a dependant must observe, if any."""
        return self._mapping().get(key)

    def keys(self) -> set[Key]:
        """The set of keys this list constrains."""
        return set(self._mapping())

    def as_pairs(self) -> tuple[tuple[Key, Version], ...]:
        """The entries as plain ``(key, version)`` pairs, recency order."""
        return tuple((entry.key, entry.version) for entry in self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DepEntry]:
        return iter(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._mapping()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependencyList):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"({e.key!r}, {e.version})" for e in self._entries)
        return f"DependencyList([{body}])"


#: Shared empty list — dependency lists are immutable, so one instance serves.
EMPTY: DependencyList = DependencyList()
