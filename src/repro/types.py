"""Shared value types for the T-Cache reproduction.

The paper's protocol (§III-A) revolves around three pieces of per-object
state: a *value*, a *version* (the id of the update transaction that wrote
it), and a bounded *dependency list* of ``(object id, version)`` pairs. The
types here give those a concrete, hashable shape shared by the database, the
caches, the consistency monitor and the workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping, NamedTuple

__all__ = [
    "Key",
    "Version",
    "TxnId",
    "INITIAL_VERSION",
    "DepEntry",
    "VersionedValue",
    "ReadResult",
    "TransactionOutcome",
    "CommittedTransaction",
]

#: Object identifier. The paper uses integers for synthetic workloads and
#: graph node ids for realistic ones; strings subsume both.
Key = str

#: Version number: the id of the update transaction that most recently wrote
#: the object. Totally ordered (§III-A).
Version = int

#: Transaction identifier; update transactions double as versions.
TxnId = int

#: Version of an object that has never been written by an update transaction
#: (i.e., was part of the initial database load).
INITIAL_VERSION: Version = 0


class DepEntry(NamedTuple):
    """One ``(object id, version)`` dependency (§III-A).

    A transaction that sees the carrier object's current version must not see
    ``key`` with a version smaller than ``version``.

    A ``NamedTuple`` rather than a frozen dataclass: entries are created on
    every commit-time merge and wrapped on every transactional read, and
    tuple construction is several times cheaper than ``object.__setattr__``
    per field.
    """

    key: Key
    version: Version

    def subsumes(self, other: "DepEntry") -> bool:
        """Whether this entry makes ``other`` redundant.

        §III-A: "A list entry can be discarded if the same entry's object
        appears in another entry with a larger version."
        """
        return self.key == other.key and self.version >= other.version


class VersionedValue(NamedTuple):
    """A value as stored in the database and shipped to caches.

    ``deps`` is the pruned dependency list that the database stored with the
    object at commit time; caches persist it verbatim and consult it on every
    transactional read. (A ``NamedTuple`` for cheap per-commit construction.)
    """

    key: Key
    value: object
    version: Version
    deps: tuple[DepEntry, ...] = ()

    def dep_on(self, key: Key) -> Version | None:
        """The minimum version of ``key`` this value requires, if any."""
        best: Version | None = None
        for entry in self.deps:
            if entry.key == key and (best is None or entry.version > best):
                best = entry.version
        return best


class ReadResult(NamedTuple):
    """Outcome of a single transactional cache read.

    Built once per cache read — the hottest allocation in a column run —
    hence a ``NamedTuple``.
    """

    key: Key
    value: object
    version: Version
    #: True when the cache had to fall through to the database.
    cache_miss: bool = False
    #: True when the value was re-read from the database by the RETRY
    #: strategy after the originally cached copy failed the dependency check.
    retried: bool = False


class TransactionOutcome(Enum):
    """Terminal state of a transaction as recorded by the monitor."""

    COMMITTED = "committed"
    ABORTED = "aborted"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class CommittedTransaction:
    """An update transaction as reported to the consistency monitor.

    ``reads`` maps each key in the read set to the version observed;
    ``writes`` maps each written key to the version installed (which equals
    the transaction's own id, §III-A).
    """

    txn_id: TxnId
    reads: Mapping[Key, Version]
    writes: Mapping[Key, Version]
    commit_time: float = 0.0

    def keys(self) -> set[Key]:
        return set(self.reads) | set(self.writes)


@dataclass(slots=True)
class ReadOnlyTransactionRecord:
    """A read-only transaction as observed at a cache, for the monitor."""

    txn_id: TxnId
    reads: dict[Key, Version] = field(default_factory=dict)
    outcome: TransactionOutcome = TransactionOutcome.COMMITTED
    finish_time: float = 0.0
    #: True when the transaction observed two different versions of the same
    #: key — inconsistent regardless of anything else in the history. The
    #: ``reads`` dict can only hold one version per key, so the cache flags
    #: the condition explicitly for the monitor.
    non_repeatable: bool = False


def entries_from_pairs(pairs: Iterable[tuple[Key, Version]]) -> tuple[DepEntry, ...]:
    """Convenience constructor used widely in tests and workloads."""
    return tuple(DepEntry(key, version) for key, version in pairs)
