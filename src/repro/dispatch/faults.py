"""Worker failure drills for the dispatch tier.

TransEdge-style deployments assume edge workers are unreliable; this module
makes that assumption *rehearsable*.  A :class:`FaultPlan` rides along with
:func:`repro.dispatch.worker.run_worker` (CLI: ``repro-experiments worker
--fault crash:3``) and injects one of three canonical failure modes after
the worker has completed a given number of points:

* ``crash`` — hard process death (``os._exit``): the kernel closes the TCP
  connection, exactly like a SIGKILL or OOM kill.  The coordinator's fast
  path (connection loss → :meth:`WorkQueue.release`) reassigns the chunk.
* ``stall`` — the worker stops executing *and stops heartbeating* while its
  connection stays open, like a worker stuck in GC or swapped out.  Only
  lease expiry can recover this one; the worker resumes afterwards and its
  late results are dropped as duplicates.
* ``disconnect`` — the worker closes its socket mid-chunk without a
  goodbye and exits cleanly, like a deploy draining a node.

The integration tests use these plans (plus a genuine ``SIGKILL`` of a
worker subprocess) to assert the coordinator's contract: a killed worker
never loses finished results and never perturbs the final sweep bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["FaultPlan"]

_KINDS = ("crash", "stall", "disconnect")


@dataclass(slots=True)
class FaultPlan:
    """Inject one failure once ``after_points`` points have completed.

    The worker checks the plan before executing each point and after
    streaming each result, so ``after_points=0`` fires as soon as the
    worker holds its first chunk — the connect-then-die drill — while
    ``after_points=N`` fires right after the N-th result.
    ``stall_seconds`` only applies to ``kind="stall"``: how long the worker
    goes silent (no execution, no heartbeats) before resuming.
    """

    kind: str
    after_points: int
    stall_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; one of {_KINDS}"
            )
        if self.after_points < 0:
            raise ConfigurationError(
                f"after_points must be >= 0, got {self.after_points}"
            )
        if self.stall_seconds <= 0:
            raise ConfigurationError(
                f"stall_seconds must be positive, got {self.stall_seconds}"
            )

    def triggers_after(self, points_done: int) -> bool:
        """Whether the fault fires once ``points_done`` points completed."""
        return points_done >= self.after_points

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI form ``kind:after_points[:stall_seconds]``.

        Examples: ``crash:3`` (die hard after 3 points), ``stall:1:10``
        (after 1 point, go silent for 10 s), ``disconnect:2``.
        """
        parts = text.split(":")
        if len(parts) not in (2, 3):
            raise ConfigurationError(
                f"fault spec {text!r} is not kind:after_points[:stall_seconds]"
            )
        kind = parts[0]
        try:
            after_points = int(parts[1])
            stall_seconds = float(parts[2]) if len(parts) == 3 else 30.0
        except ValueError as exc:
            raise ConfigurationError(f"bad fault spec {text!r}: {exc}") from exc
        return cls(
            kind=kind, after_points=after_points, stall_seconds=stall_seconds
        )
