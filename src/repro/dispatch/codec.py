"""Wire encoding of sweep results for the dispatch protocol.

Work travels *to* a worker as a :meth:`SweepPoint.as_dict` payload (the
portable half of the sweep layer); results travel *back* through this
module.  The encoding is plain JSON — stat dataclasses by field dict,
series as-is — and the decoder reattaches the **coordinator's own** spec
objects (the point's :class:`ColumnConfig` or :class:`ScenarioSpec`)
instead of echoing them over the wire.  That keeps result frames small and
makes the determinism contract structural: a dispatched
``SweepResult.to_artifact()`` is built from the very same spec objects a
local run would use, so any byte difference against ``jobs=1`` can only
come from the simulation itself — which is deterministic.

JSON round-tripping is exact for every field involved: series values are
Python floats (``repr`` round-trip), counters are ints.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Mapping

from repro.cache.base import CacheStats
from repro.clients.read_client import ReadClientStats
from repro.clients.update_client import UpdateClientStats
from repro.db.database import DatabaseStats
from repro.errors import ProtocolError
from repro.experiments.sweep import SweepPoint
from repro.monitor.stats import ClassCounts
from repro.scenario.results import (
    BackendAggregates,
    ColumnResult,
    FleetAggregates,
    ScenarioResult,
)
from repro.scenario.spec import ScenarioSpec
from repro.sim.channel import ChannelStats

__all__ = ["decode_result", "encode_result"]


def _decode_stats(cls: type, payload: Mapping[str, object]):
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ProtocolError(f"bad {cls.__name__} payload: {exc}") from exc


def _encode_column(result: ColumnResult) -> dict[str, object]:
    # The config is deliberately omitted: the decoder reattaches the
    # coordinator's local config/spec objects (see module docstring).
    return {
        "counts": asdict(result.counts),
        "cache_stats": asdict(result.cache_stats),
        "db_stats": asdict(result.db_stats),
        "channel_stats": asdict(result.channel_stats),
        "update_client_stats": asdict(result.update_client_stats),
        "read_client_stats": asdict(result.read_client_stats),
        "series": result.series,
        "detections_eq1": result.detections_eq1,
        "detections_eq2": result.detections_eq2,
        "retries_resolved": result.retries_resolved,
        # Telemetry rides along only when the point ran traced, so untraced
        # frames stay byte-identical to previous protocol versions.
        **({"telemetry": result.telemetry} if result.telemetry is not None else {}),
        **({"trace": result.trace} if result.trace is not None else {}),
    }


def _decode_column(payload: Mapping[str, object], config) -> ColumnResult:
    return ColumnResult(
        config=config,
        counts=_decode_stats(ClassCounts, payload["counts"]),
        cache_stats=_decode_stats(CacheStats, payload["cache_stats"]),
        db_stats=_decode_stats(DatabaseStats, payload["db_stats"]),
        channel_stats=_decode_stats(ChannelStats, payload["channel_stats"]),
        update_client_stats=_decode_stats(
            UpdateClientStats, payload["update_client_stats"]
        ),
        read_client_stats=_decode_stats(
            ReadClientStats, payload["read_client_stats"]
        ),
        series=list(payload["series"]),
        detections_eq1=payload["detections_eq1"],
        detections_eq2=payload["detections_eq2"],
        retries_resolved=payload["retries_resolved"],
        telemetry=payload.get("telemetry"),
        trace=payload.get("trace"),
    )


def _encode_scenario(result: ScenarioResult) -> dict[str, object]:
    return {
        "edges": [_encode_column(edge) for edge in result.edges],
        "fleet": asdict(result.fleet),
        "db_stats": asdict(result.db_stats),
        "backends": [
            {
                "name": aggregate.name,
                "edges": list(aggregate.edges),
                "counts": asdict(aggregate.counts),
                "db_stats": asdict(aggregate.db_stats),
                "db_accesses": aggregate.db_accesses,
                "read_load": aggregate.read_load,
            }
            for aggregate in result.backends
        ],
        **({"telemetry": result.telemetry} if result.telemetry is not None else {}),
        **({"trace": result.trace} if result.trace is not None else {}),
    }


def _decode_scenario(
    payload: Mapping[str, object], spec: ScenarioSpec
) -> ScenarioResult:
    edge_payloads = payload["edges"]
    if len(edge_payloads) != len(spec.edges):
        raise ProtocolError(
            f"scenario result carries {len(edge_payloads)} edges, "
            f"spec {spec.name!r} has {len(spec.edges)}"
        )
    fleet_payload = dict(payload["fleet"])
    fleet_payload["counts"] = _decode_stats(ClassCounts, fleet_payload["counts"])
    return ScenarioResult(
        spec=spec,
        edges=[
            _decode_column(edge_payload, spec.edge_config(edge_spec))
            for edge_spec, edge_payload in zip(spec.edges, edge_payloads)
        ],
        fleet=_decode_stats(FleetAggregates, fleet_payload),
        db_stats=_decode_stats(DatabaseStats, payload["db_stats"]),
        backends=[
            BackendAggregates(
                name=backend["name"],
                edges=list(backend["edges"]),
                counts=_decode_stats(ClassCounts, backend["counts"]),
                db_stats=_decode_stats(DatabaseStats, backend["db_stats"]),
                db_accesses=backend["db_accesses"],
                read_load=backend["read_load"],
            )
            for backend in payload["backends"]
        ],
        telemetry=payload.get("telemetry"),
        trace=payload.get("trace"),
    )


def encode_result(result: ColumnResult | ScenarioResult) -> dict[str, object]:
    """A result as a JSON-safe wire payload, tagged by kind."""
    if isinstance(result, ScenarioResult):
        return {"kind": "scenario", **_encode_scenario(result)}
    if isinstance(result, ColumnResult):
        return {"kind": "column", **_encode_column(result)}
    raise ProtocolError(
        f"cannot encode result of type {type(result).__name__}"
    )


def decode_result(
    payload: Mapping[str, object], point: SweepPoint
) -> ColumnResult | ScenarioResult:
    """Rebuild a result from :func:`encode_result` output.

    ``point`` supplies the coordinator-side spec objects the wire payload
    deliberately omits; the payload's kind must match the point's.
    """
    try:
        kind = payload["kind"]
    except (TypeError, KeyError):
        raise ProtocolError(f"result payload has no 'kind': {payload!r}")
    if kind == "scenario":
        if point.scenario is None:
            raise ProtocolError(
                f"scenario result for column point {point.label!r}"
            )
        return _decode_scenario(payload, point.scenario)
    if kind == "column":
        if point.config is None:
            raise ProtocolError(
                f"column result for scenario point {point.label!r}"
            )
        return _decode_column(payload, point.config)
    raise ProtocolError(f"unknown result kind {kind!r}")
