"""Multi-sweep, priority-ordered work state behind the fleet daemon.

Where the one-shot :class:`~repro.dispatch.queue.WorkQueue` serves exactly
one sweep and dies with its coordinator, a :class:`FleetQueue` holds *many*
named sweeps at once and outlives all of them.  It keeps the queue layer's
hard-won failure semantics — per-point completion, lease deadlines
extended by heartbeats and results, connection-loss and lease-expiry both
re-queueing only unfinished indices at the front, first-writer-wins
results — and adds what a service needs on top:

* **Named entries with priorities**: ``acquire`` always drains the
  highest-priority sweep with pending work first (FIFO among equals), so
  an urgent grid submitted mid-run overtakes a bulk backfill without
  cancelling it.
* **Dynamic chunk sizing**: the caller passes how many points the asking
  worker should get (the daemon feeds this from
  :class:`~repro.dispatch.health.HealthTracker`), instead of a chunk size
  frozen at construction.
* **Resume**: entries can be seeded with journaled results, and
  resubmitting a sweep whose fingerprint matches an existing entry
  attaches to it — reviving it if it was cancelled — rather than
  recomputing.
* **Cancellation**: pending work is dropped, live leases are torn up, and
  late results for a cancelled sweep are ignored.

Results are stored as their *wire payloads* (the ``encode_result`` dicts):
the daemon never rebuilds live result objects — decoding against local
spec objects is the submitting client's job, which is exactly what keeps
fleet-served artifacts byte-identical to ``jobs=1`` runs.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.errors import ConfigurationError, DispatchError
from repro.experiments.sweep import SweepSpec

__all__ = ["FleetEntry", "FleetLease", "FleetQueue"]

#: Entry lifecycle: accepting/serving work → every point journaled →
#: explicitly cancelled.  There is no separate "queued" state — a sweep
#: with no worker yet is simply running with zero progress.
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"


@dataclass(slots=True)
class FleetLease:
    """A batch of one sweep's point indices leased to one worker."""

    lease_id: int
    sweep: str
    indices: tuple[int, ...]
    owner: str
    deadline: float


@dataclass(slots=True)
class FleetEntry:
    """One named sweep's full state inside the daemon."""

    name: str
    priority: int
    submitted_ord: int
    spec: SweepSpec
    fingerprint: str
    #: Portable JSON payloads, one per point, in spec order.
    point_payloads: list[dict]
    #: Wire result payloads keyed by point index (journaled + live).
    results: dict[int, dict] = field(default_factory=dict)
    #: Indices seeded from a journal rather than executed this lifetime.
    resumed: frozenset[int] = frozenset()
    #: Results accepted over the wire by *this* daemon process — the
    #: counter the no-re-execution drills assert on.
    executed: int = 0
    duplicates: int = 0
    cancelled: bool = False
    pending: deque[int] = field(default_factory=deque)

    @property
    def total(self) -> int:
        return len(self.point_payloads)

    @property
    def completed(self) -> int:
        return len(self.results)

    @property
    def state(self) -> str:
        if self.cancelled:
            return CANCELLED
        if self.completed == self.total:
            return DONE
        return RUNNING

    def status_row(self, leased: int) -> dict[str, object]:
        """A JSON-safe row for ``status`` reports."""
        return {
            "sweep": self.name,
            "state": self.state,
            "priority": self.priority,
            "total": self.total,
            "completed": self.completed,
            "pending": len(self.pending),
            "leased": leased,
            "resumed": len(self.resumed),
            "executed": self.executed,
            "duplicates": self.duplicates,
            "fingerprint": self.fingerprint,
        }


class FleetQueue:
    """Thread-safe state for every sweep a daemon is serving.

    One lock guards all entries — submissions, leases and results are tiny
    bookkeeping operations next to the simulations they schedule, so a
    single lock keeps the invariants easy to believe.  ``clock`` is
    injectable for tests.
    """

    def __init__(
        self,
        *,
        lease_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_timeout <= 0:
            raise ConfigurationError(
                f"lease_timeout must be positive, got {lease_timeout}"
            )
        self.lease_timeout = lease_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: dict[str, FleetEntry] = {}
        self._leases: dict[int, FleetLease] = {}
        self._next_lease_id = 0
        self._next_submit_ord = 0
        #: Lifetime count of leases whose unfinished work was re-queued
        #: (worker death, disconnect, or expiry) — the "lease churn" gauge
        #: the daemon's ``metrics`` verb reports.
        self.leases_requeued = 0

    # ------------------------------------------------------------------
    # Submissions
    # ------------------------------------------------------------------

    def submit(
        self,
        name: str,
        spec: SweepSpec,
        point_payloads: list[dict],
        fingerprint: str,
        *,
        priority: int = 0,
        resumed_results: Mapping[int, dict] | None = None,
    ) -> tuple[FleetEntry, bool]:
        """Register a sweep; returns ``(entry, created)``.

        A resubmission whose fingerprint matches the existing entry
        *attaches*: the caller gets the live entry (revived if it was
        cancelled) and ``created=False``.  A name collision with a
        different fingerprint is refused loudly — two different grids must
        never share journaled state.
        """
        if not name:
            raise ConfigurationError("sweep name must be non-empty")
        with self._lock:
            existing = self._entries.get(name)
            if existing is not None:
                if existing.fingerprint != fingerprint:
                    raise DispatchError(
                        f"sweep {name!r} already exists with fingerprint "
                        f"{existing.fingerprint}, submission has "
                        f"{fingerprint} — pick a new name or submit the "
                        "identical spec to resume it"
                    )
                if existing.cancelled:
                    existing.cancelled = False
                    self._requeue_missing(existing)
                return existing, False
            entry = FleetEntry(
                name=name,
                priority=priority,
                submitted_ord=self._next_submit_ord,
                spec=spec,
                fingerprint=fingerprint,
                point_payloads=point_payloads,
                results={
                    index: dict(result)
                    for index, result in (resumed_results or {}).items()
                },
            )
            self._next_submit_ord += 1
            entry.resumed = frozenset(entry.results)
            bad = [i for i in entry.results if not 0 <= i < entry.total]
            if bad:
                raise DispatchError(
                    f"sweep {name!r}: resumed result indices {sorted(bad)} "
                    f"outside sweep of {entry.total} points"
                )
            self._requeue_missing(entry)
            self._entries[name] = entry
            return entry, True

    def cancel(self, name: str) -> bool:
        """Stop serving ``name``; ``False`` if no such sweep."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                return False
            entry.cancelled = True
            entry.pending.clear()
            for lease_id in [
                lease_id
                for lease_id, lease in self._leases.items()
                if lease.sweep == name
            ]:
                del self._leases[lease_id]
            return True

    # ------------------------------------------------------------------
    # Worker-facing operations
    # ------------------------------------------------------------------

    def acquire(self, owner: str, max_points: int) -> FleetLease | None:
        """Lease up to ``max_points`` indices of the most urgent sweep.

        Urgency: highest ``priority`` first, then earliest submission.
        Expired leases are reaped first so a dead worker's points are
        re-acquirable the moment anyone asks.  ``None`` when nothing is
        pending anywhere — the daemon replies ``wait``, never ``done``,
        because new sweeps may arrive at any time.
        """
        if max_points < 1:
            raise ConfigurationError(
                f"max_points must be >= 1, got {max_points}"
            )
        with self._lock:
            self._expire_stale_leases()
            for entry in self._serving_order():
                indices: list[int] = []
                while entry.pending and len(indices) < max_points:
                    index = entry.pending.popleft()
                    if index not in entry.results:
                        indices.append(index)
                if not indices:
                    continue
                lease = FleetLease(
                    lease_id=self._next_lease_id,
                    sweep=entry.name,
                    indices=tuple(indices),
                    owner=owner,
                    deadline=self._clock() + self.lease_timeout,
                )
                self._next_lease_id += 1
                self._leases[lease.lease_id] = lease
                return lease
            return None

    def complete(
        self, sweep: str, index: int, result: Mapping[str, object], owner: str
    ) -> bool:
        """Record one point's wire result; ``False`` if dropped.

        Drops (without error) duplicates and results for cancelled sweeps;
        raises for sweeps the daemon has never heard of or indices outside
        the grid — those are protocol violations, not races.
        """
        with self._lock:
            entry = self._entries.get(sweep)
            if entry is None:
                raise DispatchError(f"result for unknown sweep {sweep!r}")
            if not 0 <= index < entry.total:
                raise DispatchError(
                    f"sweep {sweep!r}: result index {index} outside "
                    f"{entry.total} points"
                )
            deadline = self._clock() + self.lease_timeout
            for lease in self._leases.values():
                if lease.owner == owner:
                    lease.deadline = deadline
            if entry.cancelled:
                return False
            if index in entry.results:
                entry.duplicates += 1
                return False
            entry.results[index] = dict(result)
            entry.executed += 1
            self._reap_finished_leases()
            return True

    def heartbeat(self, owner: str) -> int:
        """Extend every lease held by ``owner``; returns how many."""
        with self._lock:
            deadline = self._clock() + self.lease_timeout
            extended = 0
            for lease in self._leases.values():
                if lease.owner == owner:
                    lease.deadline = deadline
                    extended += 1
            return extended

    def release(self, owner: str) -> int:
        """Re-queue the unfinished work of every lease held by ``owner``."""
        with self._lock:
            return self._release_leases(
                [
                    lease_id
                    for lease_id, lease in self._leases.items()
                    if lease.owner == owner
                ]
            )

    def expire_stale_leases(self) -> int:
        with self._lock:
            return self._expire_stale_leases()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def entry(self, name: str) -> FleetEntry | None:
        with self._lock:
            return self._entries.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def results_for(self, name: str) -> dict[int, dict] | None:
        """Snapshot of a sweep's wire results; ``None`` for unknown names."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                return None
            return {index: dict(result) for index, result in entry.results.items()}

    def status_rows(self) -> list[dict[str, object]]:
        """One JSON-safe row per sweep, in submission order."""
        with self._lock:
            leased_by_sweep: dict[str, int] = {}
            for lease in self._leases.values():
                leased_by_sweep[lease.sweep] = (
                    leased_by_sweep.get(lease.sweep, 0) + len(lease.indices)
                )
            return [
                entry.status_row(leased_by_sweep.get(entry.name, 0))
                for entry in sorted(
                    self._entries.values(), key=lambda e: e.submitted_ord
                )
            ]

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------

    def _serving_order(self) -> Iterable[FleetEntry]:
        return sorted(
            (
                entry
                for entry in self._entries.values()
                if not entry.cancelled and entry.pending
            ),
            key=lambda entry: (-entry.priority, entry.submitted_ord),
        )

    def _requeue_missing(self, entry: FleetEntry) -> None:
        queued = set(entry.pending)
        leased = {
            index
            for lease in self._leases.values()
            if lease.sweep == entry.name
            for index in lease.indices
        }
        entry.pending.extend(
            index
            for index in range(entry.total)
            if index not in entry.results
            and index not in queued
            and index not in leased
        )

    def _expire_stale_leases(self) -> int:
        now = self._clock()
        return self._release_leases(
            [
                lease_id
                for lease_id, lease in self._leases.items()
                if lease.deadline <= now
            ]
        )

    def _release_leases(self, lease_ids: list[int]) -> int:
        requeued = 0
        for lease_id in lease_ids:
            lease = self._leases.pop(lease_id)
            entry = self._entries.get(lease.sweep)
            if entry is None or entry.cancelled:
                continue
            remaining = [
                index for index in lease.indices if index not in entry.results
            ]
            if remaining:
                # Front of the queue: orphaned work jumps ahead so the
                # sweep's tail is not parked behind fresh indices.
                entry.pending.extendleft(reversed(remaining))
                requeued += 1
                self.leases_requeued += 1
        return requeued

    def _reap_finished_leases(self) -> None:
        finished = [
            lease_id
            for lease_id, lease in self._leases.items()
            if all(
                index in self._entries[lease.sweep].results
                for index in lease.indices
            )
        ]
        for lease_id in finished:
            del self._leases[lease_id]
