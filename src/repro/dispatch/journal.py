"""Append-only JSONL journals: the fleet daemon's durable memory.

Every completed sweep point the daemon accepts is appended — one JSON
object per line — to a per-sweep journal file before the worker is told
``ok``.  A daemon that is SIGKILLed mid-sweep therefore loses nothing it
acknowledged: restarted against the same ``--journal`` directory it
replays each file, rebuilds the sweep spec recorded in the header line
(through the same :meth:`SweepSpec.from_dict` round-trip the dispatch
layer already validates points with), and resumes serving only the
indices that have no journaled result.  Resubmitting an *identical* sweep
to a live daemon hits the same path: matching fingerprints attach to the
journaled state instead of recomputing.

File layout (``<journal_dir>/<sweep>.jsonl``)::

    {"kind": "sweep", "schema": "repro.fleet-journal/1", "name": ...,
     "fingerprint": "sha256:...", "total": N, "spec": {...spec_artifact...}}
    {"kind": "point", "index": 3, "result": {...encode_result...}}
    {"kind": "point", "index": 0, "result": {...}}
    ...

Trust model — what replay does with a damaged file:

* **Truncated final line** (daemon died mid-append): skipped with a
  warning and the point is simply recomputed.  This is the one corruption
  an interrupted append legitimately produces, so it must not brick the
  journal.
* **Duplicate point index**: :class:`~repro.errors.JournalError`.  The
  daemon never appends an index twice, so a duplicate means the file was
  edited or two daemons shared a directory — silently trusting either
  line would hide real corruption.
* **Fingerprint mismatch** against the sweep being resumed:
  :class:`~repro.errors.JournalError`.  A journal written by a different
  grid must never seed this one's results.
* **Garbage anywhere else** (unreadable header, non-final corrupt line,
  out-of-range index): :class:`~repro.errors.JournalError` — loud, never
  silently recomputed.
"""

from __future__ import annotations

import hashlib
import io
import json
import logging
import os
import re
import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError, JournalError
from repro.experiments.sweep import SweepSpec, spec_artifact

_LOGGER = logging.getLogger("repro.dispatch.journal")

__all__ = [
    "ARCHIVE_DIRNAME",
    "INDEX_FILENAME",
    "JOURNAL_SCHEMA",
    "JournalIndexEntry",
    "ReplayedJournal",
    "SweepJournal",
    "compact_finished",
    "journal_index",
    "journal_path",
    "list_journals",
    "sweep_fingerprint",
]

#: Version tag of the journal file layout, recorded in every header.
JOURNAL_SCHEMA = "repro.fleet-journal/1"

_SAFE_NAME = re.compile(r"[^A-Za-z0-9._-]+")


def sweep_fingerprint(spec: SweepSpec) -> str:
    """Content hash of a sweep's full grid (spec, points, seeds).

    Two specs with the same fingerprint produce byte-identical results, so
    the fingerprint is what makes "resubmitting an identical sweep resumes
    it" safe: the daemon compares fingerprints, never just names.
    """
    canonical = json.dumps(
        spec_artifact(spec), sort_keys=True, separators=(",", ":")
    )
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def journal_path(journal_dir: str, name: str) -> str:
    """Where ``name``'s journal lives under ``journal_dir``."""
    safe = _SAFE_NAME.sub("_", name)
    if not safe or safe in (".", ".."):
        raise ConfigurationError(f"sweep name {name!r} has no safe filename")
    return os.path.join(journal_dir, f"{safe}.jsonl")


def list_journals(journal_dir: str) -> list[str]:
    """Every journal file in ``journal_dir``, sorted for determinism."""
    if not os.path.isdir(journal_dir):
        return []
    return sorted(
        os.path.join(journal_dir, entry)
        for entry in os.listdir(journal_dir)
        if entry.endswith(".jsonl")
    )


@dataclass(slots=True)
class ReplayedJournal:
    """What :meth:`SweepJournal.replay` recovered from one file."""

    path: str
    name: str
    fingerprint: str
    total: int
    #: Priority the sweep was submitted with (restored across restarts).
    priority: int
    #: The header's recorded grid, rebuildable via ``SweepSpec.from_dict``.
    spec_payload: dict
    #: Journaled wire results keyed by point index.
    results: dict[int, dict] = field(default_factory=dict)
    #: Human-readable notes for tolerated damage (truncated final line).
    warnings: list[str] = field(default_factory=list)

    def rebuild_spec(self) -> SweepSpec:
        """The journaled sweep as a live :class:`SweepSpec`.

        The round-trip is validated twice over: ``from_dict`` itself fails
        loudly for non-portable points, and the rebuilt spec must hash back
        to the journal's recorded fingerprint — a journal whose spec payload
        was edited cannot masquerade as the sweep it claims to be.
        """
        spec = SweepSpec.from_dict(self.spec_payload)
        rebuilt = sweep_fingerprint(spec)
        if rebuilt != self.fingerprint:
            raise JournalError(
                f"{self.path}: journaled spec rebuilds to fingerprint "
                f"{rebuilt}, header claims {self.fingerprint}"
            )
        return spec


class SweepJournal:
    """One sweep's append-only journal, open for appending.

    Use :meth:`create` for a brand-new sweep (writes the header) or
    :meth:`attach` to resume an existing file (replays, validates the
    fingerprint, then appends).  ``fsync=True`` makes every append survive
    machine crashes, not just process kills; the default flush-per-line is
    enough for the SIGKILL drills (the OS keeps flushed bytes).
    """

    def __init__(
        self,
        path: str,
        *,
        name: str,
        fingerprint: str,
        total: int,
        handle: io.TextIOBase,
        journaled: set[int],
        fsync: bool = False,
    ) -> None:
        self.path = path
        self.name = name
        self.fingerprint = fingerprint
        self.total = total
        self._handle = handle
        self._journaled = journaled
        self._fsync = fsync

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        journal_dir: str,
        spec: SweepSpec,
        *,
        name: str,
        priority: int = 0,
        fsync: bool = False,
    ) -> "SweepJournal":
        """Start a fresh journal for ``spec``; the file must not exist."""
        os.makedirs(journal_dir, exist_ok=True)
        path = journal_path(journal_dir, name)
        if os.path.exists(path):
            raise JournalError(
                f"journal {path} already exists; attach to it instead"
            )
        fingerprint = sweep_fingerprint(spec)
        handle = open(path, "x", encoding="utf-8")
        header = {
            "kind": "sweep",
            "schema": JOURNAL_SCHEMA,
            "name": name,
            "fingerprint": fingerprint,
            "total": len(spec.points),
            "priority": priority,
            "spec": spec_artifact(spec),
        }
        handle.write(json.dumps(header, separators=(",", ":")) + "\n")
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
        return cls(
            path,
            name=name,
            fingerprint=fingerprint,
            total=len(spec.points),
            handle=handle,
            journaled=set(),
            fsync=fsync,
        )

    @classmethod
    def attach(
        cls,
        path: str,
        *,
        expected_fingerprint: str | None = None,
        fsync: bool = False,
    ) -> tuple["SweepJournal", ReplayedJournal]:
        """Replay ``path`` and reopen it for appending.

        ``expected_fingerprint`` guards resubmission: a live sweep being
        re-attached must hash to the same grid the journal recorded.
        """
        replayed = cls.replay(path, expected_fingerprint=expected_fingerprint)
        handle = open(path, "a", encoding="utf-8")
        journal = cls(
            path,
            name=replayed.name,
            fingerprint=replayed.fingerprint,
            total=replayed.total,
            handle=handle,
            journaled=set(replayed.results),
            fsync=fsync,
        )
        return journal, replayed

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    @staticmethod
    def replay(
        path: str, *, expected_fingerprint: str | None = None
    ) -> ReplayedJournal:
        """Read one journal file back; loud on corruption (module docstring)."""
        try:
            with open(path, encoding="utf-8") as handle:
                raw = handle.read()
        except OSError as exc:
            raise JournalError(f"cannot read journal {path}: {exc}") from exc
        lines = raw.split("\n")
        # A well-formed file ends in "\n", so the final split element is
        # empty; anything else is a mid-append truncation of the tail.
        truncated_tail = lines[-1] != ""
        tail = lines[-1]
        lines = lines[:-1]
        if not lines and not truncated_tail:
            raise JournalError(f"journal {path} is empty")
        if not lines:  # only a truncated fragment, not even a header
            raise JournalError(
                f"journal {path} has no complete header line "
                f"(found truncated fragment {tail[:80]!r})"
            )
        header = _parse_line(path, 1, lines[0])
        if header.get("kind") != "sweep":
            raise JournalError(
                f"{path}:1: first line must be the sweep header, "
                f"got kind={header.get('kind')!r}"
            )
        if header.get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"{path}:1: unknown journal schema {header.get('schema')!r} "
                f"(this build reads {JOURNAL_SCHEMA!r})"
            )
        name = header.get("name")
        fingerprint = header.get("fingerprint")
        total = header.get("total")
        priority = header.get("priority", 0)
        spec_payload = header.get("spec")
        if (
            not isinstance(name, str)
            or not isinstance(fingerprint, str)
            or not isinstance(total, int)
            or total < 0
            or not isinstance(priority, int)
            or not isinstance(spec_payload, Mapping)
        ):
            raise JournalError(f"{path}:1: malformed sweep header")
        if (
            expected_fingerprint is not None
            and fingerprint != expected_fingerprint
        ):
            raise JournalError(
                f"{path}: journal was written by a different sweep spec "
                f"(journal {fingerprint}, submitted {expected_fingerprint}) — "
                "refusing to seed its results"
            )
        replayed = ReplayedJournal(
            path=path,
            name=name,
            fingerprint=fingerprint,
            total=total,
            priority=priority,
            spec_payload=dict(spec_payload),
        )
        for lineno, line in enumerate(lines[1:], start=2):
            record = _parse_line(path, lineno, line)
            if record.get("kind") != "point":
                raise JournalError(
                    f"{path}:{lineno}: expected a point record, "
                    f"got kind={record.get('kind')!r}"
                )
            index = record.get("index")
            result = record.get("result")
            if not isinstance(index, int) or not 0 <= index < total:
                raise JournalError(
                    f"{path}:{lineno}: point index {index!r} outside "
                    f"sweep of {total} points"
                )
            if index in replayed.results:
                raise JournalError(
                    f"{path}:{lineno}: duplicate journal entry for point "
                    f"{index} — the append-only contract was violated"
                )
            if not isinstance(result, Mapping):
                raise JournalError(
                    f"{path}:{lineno}: point {index} carries no result object"
                )
            replayed.results[index] = dict(result)
        if truncated_tail:
            # Kept on the replay record for the daemon's status report, and
            # logged so an operator replaying by hand sees it immediately.
            message = (
                f"{path}: final line is a truncated fragment "
                f"({len(tail)} bytes) — skipped; its point will be recomputed"
            )
            replayed.warnings.append(message)
            _LOGGER.warning("%s", message)
        return replayed

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    @property
    def journaled_indices(self) -> frozenset[int]:
        return frozenset(self._journaled)

    def record(self, index: int, result: Mapping[str, object]) -> bool:
        """Append one completed point; ``False`` if it was already journaled.

        Flushed (and optionally fsynced) before returning, so the caller
        may acknowledge the worker knowing the result is durable.
        """
        if not 0 <= index < self.total:
            raise JournalError(
                f"{self.path}: refusing to journal index {index} outside "
                f"sweep of {self.total} points"
            )
        if index in self._journaled:
            return False
        line = json.dumps(
            {"kind": "point", "index": index, "result": dict(result)},
            separators=(",", ":"),
        )
        self._handle.write(line + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        self._journaled.add(index)
        return True

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _parse_line(path: str, lineno: int, line: str) -> dict:
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise JournalError(
            f"{path}:{lineno}: unreadable journal line ({exc}) — "
            "only a truncated *final* line is tolerated"
        ) from exc
    if not isinstance(payload, dict):
        raise JournalError(
            f"{path}:{lineno}: journal lines must be JSON objects, "
            f"got {type(payload).__name__}"
        )
    return payload


# ----------------------------------------------------------------------
# Index + compaction: keeping ``fleet status`` O(active sweeps)
# ----------------------------------------------------------------------

#: Sidecar cache of per-journal summaries, keyed by (mtime_ns, size) so a
#: journal that has not been appended to since the last scan is summarised
#: without re-reading it.
INDEX_FILENAME = ".index.json"

#: Where :func:`compact_finished` moves finished journals, relative to the
#: journal directory.
ARCHIVE_DIRNAME = "archive"


@dataclass(slots=True)
class JournalIndexEntry:
    """One journal's summary as recorded in the directory index."""

    path: str
    name: str
    fingerprint: str
    total: int
    completed: int
    priority: int
    mtime_ns: int
    size: int

    @property
    def finished(self) -> bool:
        """Every point journaled (an empty grid is trivially finished)."""
        return self.completed >= self.total


def journal_index(
    journal_dir: str, *, use_cache: bool = True
) -> list[JournalIndexEntry]:
    """Summaries of every journal in ``journal_dir``, sorted by path.

    Backed by a sidecar cache (:data:`INDEX_FILENAME`): a journal whose
    ``(mtime_ns, size)`` matches its cached entry is summarised without
    replaying the file, so repeated scans of a directory full of finished
    sweeps cost one ``stat`` each instead of a full replay.  Changed or new
    files are replayed (loud on corruption, like any replay) and the cache
    is rewritten.  The cache itself is derived data: an unreadable or
    stale-schema cache is discarded and rebuilt, never trusted.
    """
    cache_path = os.path.join(journal_dir, INDEX_FILENAME)
    cached: dict[str, dict] = {}
    if use_cache:
        try:
            with open(cache_path, encoding="utf-8") as handle:
                payload = json.load(handle)
            if isinstance(payload, dict):
                entries = payload.get("journals")
                if isinstance(entries, dict):
                    cached = entries
        except (OSError, ValueError):
            cached = {}
    index: list[JournalIndexEntry] = []
    fresh: dict[str, dict] = {}
    dirty = False
    for path in list_journals(journal_dir):
        stat = os.stat(path)
        basename = os.path.basename(path)
        entry = cached.get(basename)
        if (
            isinstance(entry, dict)
            and entry.get("mtime_ns") == stat.st_mtime_ns
            and entry.get("size") == stat.st_size
        ):
            try:
                index.append(JournalIndexEntry(path=path, **entry))
                fresh[basename] = entry
                continue
            except TypeError:
                pass  # stale cache schema: rebuild this entry
        replayed = SweepJournal.replay(path)
        summary = {
            "name": replayed.name,
            "fingerprint": replayed.fingerprint,
            "total": replayed.total,
            "completed": len(replayed.results),
            "priority": replayed.priority,
            "mtime_ns": stat.st_mtime_ns,
            "size": stat.st_size,
        }
        index.append(JournalIndexEntry(path=path, **summary))
        fresh[basename] = summary
        dirty = True
    if use_cache and (dirty or set(fresh) != set(cached)):
        try:
            tmp_path = cache_path + ".tmp"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump({"schema": JOURNAL_SCHEMA, "journals": fresh}, handle)
            os.replace(tmp_path, cache_path)
        except OSError:
            pass  # the cache is an optimisation; the index above is correct
    return index


def compact_finished(
    journal_dir: str,
    *,
    older_than: float = 0.0,
    archive_dir: str | None = None,
    now: float | None = None,
) -> list[str]:
    """Archive every finished journal idle for ``older_than`` seconds.

    A journal is finished when all its points are journaled; "idle" is
    measured from its mtime (a finished journal is never appended to
    again). Files move into ``archive_dir`` (default
    ``<journal_dir>/archive/``) rather than being deleted — the results
    remain replayable by hand, but daemon restarts and ``fleet status``
    stop paying for them.  Returns the archived journals' new paths.

    Trade-off made explicit: resubmitting a sweep whose journal was
    archived recomputes it (the fingerprint match happens against live
    journals only).
    """
    if older_than < 0:
        raise ConfigurationError(
            f"older_than must be >= 0, got {older_than}"
        )
    destination = archive_dir or os.path.join(journal_dir, ARCHIVE_DIRNAME)
    reference = time.time() if now is None else now
    archived: list[str] = []
    for entry in journal_index(journal_dir):
        if not entry.finished:
            continue
        if reference - entry.mtime_ns / 1e9 < older_than:
            continue
        os.makedirs(destination, exist_ok=True)
        target = os.path.join(destination, os.path.basename(entry.path))
        os.replace(entry.path, target)
        archived.append(target)
    if archived:
        journal_index(journal_dir)  # refresh the sidecar cache
    return archived
