"""Cross-host dispatch: a coordinator/worker work queue for sweeps.

PR 1–3 made the paper's evaluation a declarative grid (``SweepSpec``) over
declarative topologies (``ScenarioSpec``) on a routed backend tier — but
execution still lived inside one process tree.  This package takes the
grid across hosts with nothing but the stdlib:

* :mod:`repro.dispatch.protocol` — length-prefixed JSON frames over TCP;
  no pickling, bounded sizes, loud failures on malformed input.
* :mod:`repro.dispatch.queue` — the coordinator's lease-based work queue:
  chunks of point indices leased to named workers, heartbeat-extended,
  re-queued on connection loss or lease expiry, first-writer-wins results.
* :mod:`repro.dispatch.codec` — results on the wire; decoding reattaches
  the coordinator's own spec objects so dispatched artifacts are
  byte-identical to local ones.
* :mod:`repro.dispatch.coordinator` — :class:`DispatchSpec` (the
  ``run_sweep(spec, dispatch=...)`` backend) and :class:`Coordinator`
  (bind, serve, reassemble in spec order).
* :mod:`repro.dispatch.worker` — :func:`run_worker`: pull chunks, execute
  through the sweep engine's own point executor, stream results.
* :mod:`repro.dispatch.faults` — :class:`FaultPlan` failure drills
  (crash / stall / disconnect) for rehearsing worker loss.
* :mod:`repro.dispatch.daemon` — :class:`FleetDaemon`: a long-lived queue
  *service* over the same frames.  Many named sweeps with priorities, an
  append-only JSONL journal (:mod:`repro.dispatch.journal`) that makes
  restarts resume instead of recompute, shared-secret HMAC authentication
  (:mod:`repro.dispatch.auth`), and per-worker throughput tracking
  (:mod:`repro.dispatch.health`) feeding adaptive chunk sizing.
* :mod:`repro.dispatch.client` — :class:`FleetSpec` / :class:`FleetClient`:
  submit/status/cancel/fetch against a daemon, and
  :func:`run_fleet_sweep` — the ``run_sweep(spec, dispatch=FleetSpec(...))``
  backend that submits instead of self-coordinating.

Determinism contract: points travel as their portable JSON encodings
(:meth:`SweepPoint.as_dict`), results come back keyed by point index, and
the coordinator reassembles through the same ordering helper the local
pool uses — so ``coordinator + N workers`` (even with workers killed
mid-chunk) produces results byte-identical to ``run_sweep(spec, jobs=1)``.
Sweeps containing non-portable workloads (graph- or trace-backed) are
rejected at coordinator construction, before any worker connects.
"""

from repro.dispatch.auth import SECRET_ENV_VAR, compute_mac, secret_from_env
from repro.dispatch.client import FleetClient, FleetSpec, run_fleet_sweep
from repro.dispatch.coordinator import (
    Coordinator,
    DispatchSpec,
    parse_hostport,
    run_dispatched,
)
from repro.dispatch.daemon import FleetConfig, FleetDaemon, run_daemon
from repro.dispatch.faults import FaultPlan
from repro.dispatch.fleet import FleetQueue
from repro.dispatch.health import HealthTracker, WorkerHealth
from repro.dispatch.journal import (
    JournalIndexEntry,
    SweepJournal,
    compact_finished,
    journal_index,
    sweep_fingerprint,
)
from repro.dispatch.queue import Chunk, WorkQueue
from repro.dispatch.worker import WorkerStats, run_worker
from repro.errors import (
    AuthenticationError,
    CoordinatorUnreachable,
    DispatchError,
    JournalError,
    ProtocolError,
)

__all__ = [
    "AuthenticationError",
    "Chunk",
    "Coordinator",
    "CoordinatorUnreachable",
    "DispatchError",
    "DispatchSpec",
    "FaultPlan",
    "FleetClient",
    "FleetConfig",
    "FleetDaemon",
    "FleetQueue",
    "FleetSpec",
    "HealthTracker",
    "JournalError",
    "JournalIndexEntry",
    "ProtocolError",
    "SECRET_ENV_VAR",
    "SweepJournal",
    "WorkQueue",
    "WorkerHealth",
    "WorkerStats",
    "compact_finished",
    "compute_mac",
    "journal_index",
    "parse_hostport",
    "run_daemon",
    "run_dispatched",
    "run_fleet_sweep",
    "run_worker",
    "secret_from_env",
    "sweep_fingerprint",
]
