"""The fleet daemon: a long-lived, journaled, authenticated sweep service.

PR 4's :class:`~repro.dispatch.coordinator.Coordinator` serves exactly one
sweep and forgets everything on exit.  A :class:`FleetDaemon` is the
promotion to infrastructure: it accepts many *named* sweeps with
priorities from ``submit`` connections, serves their points to workers
over the same frame protocol (now version-gated at protocol 2), journals
every accepted result to an append-only JSONL file
(:mod:`repro.dispatch.journal`) *before* acknowledging it, and — when a
shared secret is configured — refuses any connection that cannot answer
the HMAC challenge (:mod:`repro.dispatch.auth`) before a single frame
touches the queue.

Because the journal is the state, the daemon survives its own failure
drills: SIGKILL it mid-sweep, restart it against the same ``--journal``
directory, and it rebuilds each sweep from the journal header
(:meth:`SweepSpec.from_dict` round-trip, fingerprint-checked), seeds the
completed indices, and serves only the remainder — already-journaled
points are provably never re-executed (the ``executed`` counter in
``status`` reports counts wire results accepted per daemon lifetime).
Resubmitting an identical sweep — same fingerprint — attaches to the live
entry (or the journal on disk) instead of recomputing.

Worker scheduling is health-aware: every connection's frames feed a
:class:`~repro.dispatch.health.HealthTracker`, and chunk sizes adapt to
each worker's observed points/sec so heterogeneous hosts drain a sweep's
tail together instead of parking it on the slowest machine.

The daemon stores and serves *wire payloads* only; decoding results
against live spec objects happens in the submitting client
(:mod:`repro.dispatch.client`), which is what keeps a fleet-served
artifact byte-identical to a ``jobs=1`` run.
"""

from __future__ import annotations

import logging
import os
import socketserver
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.dispatch.auth import issue_nonce, secret_from_env, verify_mac
from repro.dispatch.fleet import FleetQueue
from repro.dispatch.health import HealthTracker
from repro.dispatch.journal import (
    SweepJournal,
    compact_finished,
    journal_path,
    list_journals,
    sweep_fingerprint,
)
from repro.dispatch.protocol import PROTOCOL_VERSION, recv_frame, send_frame
from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    JournalError,
    ProtocolError,
)
from repro.experiments.sweep import SweepSpec, spec_artifact
from repro.telemetry import MetricsRegistry

__all__ = ["FleetConfig", "FleetDaemon", "run_daemon"]

_ROLES = ("worker", "submitter")

#: Daemon diagnostics go through stdlib logging (the CLI configures the
#: root handler and ``--log-level``); user-facing tables stay on stdout.
_LOGGER = logging.getLogger("repro.dispatch.daemon")


@dataclass(slots=True)
class FleetConfig:
    """How one fleet daemon listens, journals and authenticates.

    ``secret=None`` (and :data:`~repro.dispatch.auth.SECRET_ENV_VAR`
    unset) runs the trusted-LAN mode the one-shot coordinator uses;
    ``journal_dir=None`` disables durability — submitted sweeps then live
    and die with the process, which is only sensible for tests.
    """

    host: str = "127.0.0.1"
    port: int = 0
    journal_dir: str | None = None
    secret: str | None = None
    lease_timeout: float = 30.0
    poll_interval: float = 0.5
    #: Adaptive chunk sizing (see :mod:`repro.dispatch.health`).
    target_chunk_seconds: float = 5.0
    probe_chunk_points: int = 1
    max_chunk_points: int = 64
    #: fsync journal appends (survive machine crash, not just SIGKILL).
    fsync: bool = False
    #: Archive finished journals idle for this many seconds at startup
    #: (``fleet serve --journal-expiry``); ``None`` keeps every journal
    #: forever.  ``0.0`` archives every finished journal immediately, so a
    #: long-lived daemon's restore (and ``fleet status``) stays O(active
    #: sweeps) however many sweeps it has ever served.
    journal_expiry: float | None = None

    def __post_init__(self) -> None:
        if not self.host:
            raise ConfigurationError("fleet host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(
                f"fleet port must be in [0, 65535], got {self.port}"
            )
        if self.lease_timeout <= 0:
            raise ConfigurationError(
                f"lease_timeout must be positive, got {self.lease_timeout}"
            )
        if self.poll_interval <= 0:
            raise ConfigurationError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )
        if self.journal_expiry is not None and self.journal_expiry < 0:
            raise ConfigurationError(
                f"journal_expiry must be >= 0 or None, got {self.journal_expiry}"
            )


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


@dataclass(slots=True)
class _DaemonStats:
    """Per-lifetime counters surfaced in status reports and tests."""

    started_at: float = field(default_factory=time.monotonic)
    connections: int = 0
    rejected_auth: int = 0
    rejected_protocol: int = 0
    submissions: int = 0
    results_accepted: int = 0


class FleetDaemon:
    """A multi-sweep queue service over the dispatch frame protocol.

    Construction binds the listening socket and — when ``journal_dir`` is
    set — restores every journaled sweep found there.  :meth:`start`
    accepts connections in the background; :meth:`serve_forever` blocks
    and doubles as the stale-lease sweeper, exactly like the one-shot
    coordinator's serve loop.
    """

    def __init__(self, config: FleetConfig | None = None) -> None:
        self.config = config or FleetConfig()
        if self.config.secret is None:
            self.config.secret = secret_from_env()
        self.queue = FleetQueue(lease_timeout=self.config.lease_timeout)
        self.health = HealthTracker(
            target_chunk_seconds=self.config.target_chunk_seconds,
            probe_chunk_points=self.config.probe_chunk_points,
            max_chunk_points=self.config.max_chunk_points,
            alive_after=self.config.lease_timeout,
        )
        self.stats = _DaemonStats()
        self._journals: dict[str, SweepJournal] = {}
        self._submit_lock = threading.Lock()
        self._owner_counter = 0
        self._owner_lock = threading.Lock()
        self._stop = threading.Event()
        self._server = _ThreadingTCPServer(
            (self.config.host, self.config.port), self._handler_class()
        )
        self._server_thread: threading.Thread | None = None
        if self.config.journal_dir:
            self._restore_from_journals()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return host, port

    def start(self) -> None:
        """Accept connections in the background (idempotent)."""
        if self._server_thread is None:
            self._server_thread = threading.Thread(
                target=self._server.serve_forever,
                kwargs={"poll_interval": min(0.1, self.config.poll_interval)},
                name="fleet-daemon",
                daemon=True,
            )
            self._server_thread.start()

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown`; sweeps stale leases while idle."""
        self.start()
        while not self._stop.is_set():
            self._stop.wait(timeout=self.config.poll_interval)
            self.queue.expire_stale_leases()

    def shutdown(self) -> None:
        """Stop accepting connections, close journals, release the port."""
        self._stop.set()
        if self._server_thread is not None:
            self._server.shutdown()
        self._server.server_close()
        for journal in self._journals.values():
            journal.close()

    # ------------------------------------------------------------------
    # Journal restore
    # ------------------------------------------------------------------

    def _restore_from_journals(self) -> None:
        if self.config.journal_expiry is not None:
            archived = compact_finished(
                self.config.journal_dir, older_than=self.config.journal_expiry
            )
            for target in archived:
                self._log(f"archived finished journal to {target}")
        for path in list_journals(self.config.journal_dir):
            journal, replayed = SweepJournal.attach(path, fsync=self.config.fsync)
            for warning in replayed.warnings:
                self._log(f"journal warning: {warning}")
            spec = replayed.rebuild_spec()
            entry, created = self.queue.submit(
                replayed.name,
                spec,
                spec_artifact(spec)["columns"],
                replayed.fingerprint,
                priority=replayed.priority,
                resumed_results=replayed.results,
            )
            if not created:  # pragma: no cover - two files, one safe name
                journal.close()
                raise JournalError(
                    f"{path}: sweep {replayed.name!r} restored twice — two "
                    "journal files map to the same sweep name"
                )
            self._journals[replayed.name] = journal
            self._log(
                f"restored sweep {replayed.name!r} from journal: "
                f"{entry.completed}/{entry.total} points already done"
            )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _handler_class(self) -> type:
        daemon = self

        class Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:  # pragma: no cover - thin shim
                daemon._handle_connection(self.request)

        return Handler

    def _register_worker(self, name: object) -> str:
        with self._owner_lock:
            self._owner_counter += 1
            return f"{name or 'worker'}#{self._owner_counter}"

    def _handle_connection(self, sock) -> None:
        owner = None
        self.stats.connections += 1
        try:
            hello = recv_frame(sock)
            if hello is None:
                return
            if hello.get("type") != "hello":
                raise ProtocolError(f"expected hello, got {hello.get('type')!r}")
            if hello.get("protocol") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"protocol version mismatch: daemon speaks "
                    f"{PROTOCOL_VERSION}, peer {hello.get('protocol')!r}"
                )
            role = hello.get("role", "worker")
            if role not in _ROLES:
                raise ProtocolError(f"unknown role {role!r}; one of {_ROLES}")
            name = str(hello.get("worker") or hello.get("client") or role)
            if self.config.secret is not None:
                # Challenge/response *before* the peer is registered
                # anywhere: a failed MAC never touches the queue.
                self._authenticate(sock, role, name)
            if role == "worker":
                owner = self._register_worker(name)
                self.health.on_connect(owner)
            send_frame(
                sock,
                {"type": "welcome", "service": "fleet", "role": role},
            )
            while True:
                frame = recv_frame(sock)
                if frame is None:
                    return
                if self._stop.is_set():
                    # shutdown() ran while we blocked on recv; close the
                    # connection rather than keep serving a dead daemon's
                    # queue (workers reconnect to whatever replaces it).
                    return
                if owner is not None:
                    self.health.on_frame(owner)
                    reply = self._reply_to_worker(frame, owner)
                else:
                    reply = self._reply_to_submitter(frame)
                send_frame(sock, reply)
                if frame.get("type") == "goodbye":
                    return
        except AuthenticationError as exc:
            self.stats.rejected_auth += 1
            self._refuse(sock, str(exc))
        except ProtocolError as exc:
            self.stats.rejected_protocol += 1
            self._refuse(sock, str(exc))
        except OSError:
            pass  # connection died; leases are released below
        finally:
            if owner is not None:
                self.queue.release(owner)
                self.health.on_disconnect(owner)

    def _authenticate(self, sock, role: str, name: str) -> None:
        nonce = issue_nonce()
        send_frame(sock, {"type": "challenge", "nonce": nonce})
        reply = recv_frame(sock)
        if reply is None:
            raise AuthenticationError(
                f"{role} {name!r} hung up at the auth challenge"
            )
        if reply.get("type") != "auth":
            raise AuthenticationError(
                f"{role} {name!r} answered the challenge with "
                f"{reply.get('type')!r}, not auth"
            )
        if not verify_mac(
            self.config.secret, nonce, role, name, reply.get("mac")
        ):
            raise AuthenticationError(
                f"{role} {name!r} presented a MAC computed with the wrong "
                "secret"
            )

    def _refuse(self, sock, message: str) -> None:
        try:
            send_frame(sock, {"type": "error", "message": message})
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Worker frames
    # ------------------------------------------------------------------

    def _reply_to_worker(self, frame: Mapping[str, object], owner: str) -> dict:
        kind = frame.get("type")
        if kind == "request":
            lease = self.queue.acquire(
                owner, self.health.chunk_points_for(owner)
            )
            if lease is None:
                return {"type": "wait", "delay": self.config.poll_interval}
            entry = self.queue.entry(lease.sweep)
            return {
                "type": "chunk",
                "sweep": lease.sweep,
                "chunk_id": lease.lease_id,
                "points": [
                    {"index": index, "point": entry.point_payloads[index]}
                    for index in lease.indices
                ],
            }
        if kind == "result":
            sweep = frame.get("sweep")
            index = frame.get("index")
            payload = frame.get("result")
            if not isinstance(sweep, str):
                raise ProtocolError(
                    f"result frame without a sweep name: {sweep!r}"
                )
            if not isinstance(index, int):
                raise ProtocolError(f"result with bad index {index!r}")
            if not isinstance(payload, Mapping):
                raise ProtocolError(
                    f"result for {sweep!r}[{index}] carries no payload object"
                )
            try:
                accepted = self.queue.complete(sweep, index, payload, owner)
            except ProtocolError:
                raise
            except Exception as exc:  # unknown sweep / bad index
                raise ProtocolError(str(exc)) from exc
            if accepted:
                self.stats.results_accepted += 1
                self.health.on_result(owner)
                self._journal_point(sweep, index, payload)
                entry = self.queue.entry(sweep)
                if entry is not None and entry.state == "done":
                    self._log(
                        f"sweep {sweep!r} complete "
                        f"({entry.executed} executed, "
                        f"{len(entry.resumed)} resumed)"
                    )
            return {"type": "ok", "accepted": accepted}
        if kind == "heartbeat":
            self.health.on_heartbeat(owner)
            extended = self.queue.heartbeat(owner)
            return {"type": "ok", "extended": extended}
        if kind == "goodbye":
            return {"type": "ok"}
        raise ProtocolError(f"unknown worker message type {kind!r}")

    def _journal_point(
        self, sweep: str, index: int, payload: Mapping[str, object]
    ) -> None:
        journal = self._journals.get(sweep)
        if journal is None:
            return
        try:
            journal.record(index, payload)
        except ValueError:
            # A handler thread raced shutdown() past the closed journal.
            # Dropping the append is crash-equivalent: the restarted
            # daemon simply re-queues this point as not-yet-durable.
            if not self._stop.is_set():
                raise

    # ------------------------------------------------------------------
    # Submitter frames
    # ------------------------------------------------------------------

    def _reply_to_submitter(self, frame: Mapping[str, object]) -> dict:
        kind = frame.get("type")
        if kind == "submit":
            return self._handle_submit(frame)
        if kind == "status":
            return self._handle_status(frame)
        if kind == "metrics":
            return self._handle_metrics()
        if kind == "cancel":
            sweep = frame.get("sweep")
            if not isinstance(sweep, str):
                raise ProtocolError(f"cancel without a sweep name: {sweep!r}")
            existed = self.queue.cancel(sweep)
            if existed:
                self._log(f"sweep {sweep!r} cancelled")
            return {"type": "cancelled", "sweep": sweep, "existed": existed}
        if kind == "fetch":
            return self._handle_fetch(frame)
        if kind == "goodbye":
            return {"type": "ok"}
        raise ProtocolError(f"unknown submitter message type {kind!r}")

    def _handle_submit(self, frame: Mapping[str, object]) -> dict:
        spec_payload = frame.get("spec")
        if not isinstance(spec_payload, Mapping):
            raise ProtocolError("submit frame carries no spec object")
        priority = frame.get("priority", 0)
        if not isinstance(priority, int):
            raise ProtocolError(f"submit priority must be an int, got {priority!r}")
        try:
            spec = SweepSpec.from_dict(spec_payload)
        except ConfigurationError as exc:
            # Non-portable or malformed grids are refused before anything
            # is queued or journaled — the coordinator's loud-failure
            # contract, now at the service boundary.
            raise ProtocolError(f"unsubmittable sweep spec: {exc}") from exc
        name = frame.get("sweep") or spec.name
        if not isinstance(name, str) or not name:
            raise ProtocolError(f"submit without a usable sweep name: {name!r}")
        fingerprint = sweep_fingerprint(spec)
        with self._submit_lock:
            resumed: dict[int, dict] = {}
            journal: SweepJournal | None = None
            attach_journal = (
                self.config.journal_dir is not None
                and self.queue.entry(name) is None
            )
            if attach_journal:
                path = journal_path(self.config.journal_dir, name)
                if os.path.exists(path):
                    journal, replayed = SweepJournal.attach(
                        path,
                        expected_fingerprint=fingerprint,
                        fsync=self.config.fsync,
                    )
                    for warning in replayed.warnings:
                        self._log(f"journal warning: {warning}")
                    resumed = replayed.results
                else:
                    journal = SweepJournal.create(
                        self.config.journal_dir,
                        spec,
                        name=name,
                        priority=priority,
                        fsync=self.config.fsync,
                    )
            try:
                entry, created = self.queue.submit(
                    name,
                    spec,
                    spec_artifact(spec)["columns"],
                    fingerprint,
                    priority=priority,
                    resumed_results=resumed,
                )
            except Exception as exc:
                if journal is not None:
                    journal.close()
                raise ProtocolError(str(exc)) from exc
            if created and journal is not None:
                self._journals[name] = journal
            elif journal is not None and name not in self._journals:
                self._journals[name] = journal
        self.stats.submissions += 1
        self._log(
            f"sweep {name!r} {'submitted' if created else 'attached'}: "
            f"{entry.completed}/{entry.total} done, priority {entry.priority}"
        )
        return {
            "type": "submitted",
            "sweep": name,
            "created": created,
            "state": entry.state,
            "total": entry.total,
            "completed": entry.completed,
            "resumed": len(entry.resumed),
        }

    def _handle_status(self, frame: Mapping[str, object]) -> dict:
        sweep = frame.get("sweep")
        rows = self.queue.status_rows()
        if isinstance(sweep, str):
            rows = [row for row in rows if row["sweep"] == sweep]
        return {
            "type": "status_report",
            "sweeps": rows,
            "workers": self.health.snapshot(),
            "daemon": {
                "protocol": PROTOCOL_VERSION,
                "uptime_seconds": round(
                    time.monotonic() - self.stats.started_at, 3
                ),
                "journal_dir": self.config.journal_dir,
                "authenticated": self.config.secret is not None,
                "results_accepted": self.stats.results_accepted,
                "rejected_auth": self.stats.rejected_auth,
            },
        }

    def _handle_metrics(self) -> dict:
        """Live ``repro.telemetry/1`` snapshot of the daemon's own state.

        Built on demand from the same counters ``status`` reads — the
        daemon keeps no registry between calls, so the verb costs nothing
        while nobody asks.  Per-sweep throughput uses the ``executed``
        counter (results accepted over the wire this lifetime); journal lag
        is results completed but not yet durable in that sweep's journal —
        nonzero only in the window between accept and append (omitted for
        daemons running without a journal directory).
        """
        registry = MetricsRegistry()
        uptime = max(time.monotonic() - self.stats.started_at, 1e-9)
        registry.gauge("daemon.uptime_seconds", round(uptime, 3))
        registry.count("daemon.connections", self.stats.connections)
        registry.count("daemon.rejected_auth", self.stats.rejected_auth)
        registry.count("daemon.rejected_protocol", self.stats.rejected_protocol)
        registry.count("daemon.submissions", self.stats.submissions)
        registry.count("daemon.results_accepted", self.stats.results_accepted)
        registry.count("queue.leases_requeued", self.queue.leases_requeued)
        for row in self.queue.status_rows():
            name = row["sweep"]
            registry.gauge(f"sweep.{name}.total", row["total"])
            registry.gauge(f"sweep.{name}.completed", row["completed"])
            registry.gauge(f"sweep.{name}.pending", row["pending"])
            registry.gauge(f"sweep.{name}.leased", row["leased"])
            registry.gauge(
                f"sweep.{name}.throughput_points_per_sec",
                round(row["executed"] / uptime, 6),
            )
            journal = self._journals.get(name)
            if journal is not None:
                registry.gauge(
                    f"sweep.{name}.journal_lag",
                    row["completed"] - len(journal.journaled_indices),
                )
        for row in self.health.snapshot():
            worker = row["worker"]
            registry.gauge(
                f"worker.{worker}.points_completed", row["points_completed"]
            )
            if row["points_per_sec"] is not None:
                registry.gauge(
                    f"worker.{worker}.points_per_sec_ewma", row["points_per_sec"]
                )
        return {"type": "metrics_report", "telemetry": registry.snapshot()}

    def _handle_fetch(self, frame: Mapping[str, object]) -> dict:
        sweep = frame.get("sweep")
        if not isinstance(sweep, str):
            raise ProtocolError(f"fetch without a sweep name: {sweep!r}")
        entry = self.queue.entry(sweep)
        if entry is None:
            raise ProtocolError(f"fetch for unknown sweep {sweep!r}")
        if entry.state != "done":
            return {
                "type": "pending",
                "sweep": sweep,
                "state": entry.state,
                "completed": entry.completed,
                "total": entry.total,
            }
        results = self.queue.results_for(sweep)
        return {
            "type": "results",
            "sweep": sweep,
            "total": entry.total,
            "results": sorted(results.items()),
        }

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------

    def _log(self, message: str) -> None:
        _LOGGER.info(message)


def run_daemon(config: FleetConfig) -> int:
    """CLI entry: serve until SIGTERM/SIGINT; returns a process exit code.

    Signal handlers are only installed on the main thread (tests call this
    from worker threads, where ``signal.signal`` is unavailable).
    """
    import signal

    daemon = FleetDaemon(config)
    host, port = daemon.address
    daemon._log(
        f"serving at {host}:{port} "
        f"(journal: {config.journal_dir or 'disabled'}, "
        f"auth: {'hmac' if daemon.config.secret else 'off'}, "
        f"restored sweeps: {len(daemon.queue.names())})"
    )

    def _stop(signum, frame) -> None:  # pragma: no cover - signal path
        daemon._log(f"signal {signum}; shutting down")
        daemon._stop.set()

    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        daemon.shutdown()
        daemon._log("stopped")
    return 0


def _main() -> int:  # pragma: no cover - exercised via the CLI module
    return run_daemon(FleetConfig())


if __name__ == "__main__":  # pragma: no cover
    sys.exit(_main())
