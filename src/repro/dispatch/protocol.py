"""Length-prefixed JSON framing for the coordinator/worker protocol.

Every dispatch message is one *frame*: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON encoding a single object.  The
framing is deliberately boring — stdlib ``socket`` on both sides, no
pickling (frames are inspectable on the wire and survive version skew
loudly instead of silently), bounded frame sizes so a corrupt or hostile
length prefix cannot make a peer allocate gigabytes.

The conversation is strictly request/reply from the worker's point of view:
the worker sends one frame (``hello``, ``request``, ``result``,
``heartbeat``, ``goodbye``) and reads exactly one reply (``welcome``,
``chunk``/``wait``/``done``, ``ok``, ``error``).  That keeps both ends free
of interleaving concerns; the worker's background heartbeat thread shares
the socket under a lock (see :mod:`repro.dispatch.worker`).

Message types
-------------

========== ============ ====================================================
type       direction    payload
========== ============ ====================================================
hello      worker → co  ``worker`` (name), ``protocol`` (version)
welcome    co → worker  ``spec`` (sweep name), ``total_points``
request    worker → co  —
chunk      co → worker  ``chunk_id``, ``points``: [{``index``, ``point``}]
wait       co → worker  ``delay`` (seconds; queue drained but run not done)
done       co → worker  — (every point has a result; worker should exit)
result     worker → co  ``index``, ``result`` (encoded, see codec)
heartbeat  worker → co  — (extends the worker's chunk leases)
goodbye    worker → co  — (clean disconnect)
ok         co → worker  ``accepted`` (for results: False on duplicates)
error      co → worker  ``message`` (protocol violation; connection closes)
========== ============ ====================================================
"""

from __future__ import annotations

import json
import socket
import struct

from repro.errors import ProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "recv_frame",
    "send_frame",
]

#: Version of the coordinator/worker message schema.  A worker whose
#: version differs from the coordinator's is refused at ``hello`` time —
#: mixed fleets must fail loudly, not corrupt results.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's JSON payload.  Scenario results carry full
#: per-edge time series, so frames are allowed to be large — but never
#: unbounded: a corrupt length prefix must not turn into a giant allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Serialise ``payload`` and send it as one length-prefixed frame."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frames must be JSON objects, got {type(payload).__name__}"
        )
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    sock.sendall(_LENGTH.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`ProtocolError` for truncated frames (EOF mid-frame), a
    length prefix of zero or beyond :data:`MAX_FRAME_BYTES`, payloads that
    are not valid UTF-8 JSON, and JSON values that are not objects.
    """
    header = _recv_exact(sock, _LENGTH.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    body = _recv_exact(sock, length, allow_eof=False)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frames must be JSON objects, got {type(payload).__name__}"
        )
    return payload


def _recv_exact(
    sock: socket.socket, count: int, *, allow_eof: bool
) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on immediate EOF if allowed."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
