"""Length-prefixed JSON framing for the coordinator/worker protocol.

Every dispatch message is one *frame*: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON encoding a single object.  The
framing is deliberately boring — stdlib ``socket`` on both sides, no
pickling (frames are inspectable on the wire and survive version skew
loudly instead of silently), bounded frame sizes so a corrupt or hostile
length prefix cannot make a peer allocate gigabytes.

The conversation is strictly request/reply from the peer's point of view:
the peer sends one frame (``hello``, ``request``, ``result``,
``heartbeat``, ``goodbye``, …) and reads exactly one reply (``welcome``,
``chunk``/``wait``/``done``, ``ok``, ``error``, …).  That keeps both ends
free of interleaving concerns; the worker's background heartbeat thread
shares the socket under a lock (see :mod:`repro.dispatch.worker`).

Message types (protocol version 2)
----------------------------------

Version 1 was the one-shot coordinator/worker exchange; version 2 keeps
those frames bit-compatible and adds — gated by the same ``hello``
version check — the fleet daemon's handshake and submitter verbs
(:mod:`repro.dispatch.daemon`).  ``srv`` below is either a one-shot
coordinator or the fleet daemon; submitter frames are daemon-only.

=============== ============ ===============================================
type            direction    payload
=============== ============ ===============================================
hello           peer → srv   ``worker`` (name), ``protocol`` (version),
                             optional ``role`` (``worker``/``submitter``,
                             daemon only)
challenge       srv → peer   ``nonce`` (daemon with a secret configured;
                             see :mod:`repro.dispatch.auth`)
auth            peer → srv   ``mac`` (HMAC-SHA256 over the nonce)
welcome         srv → peer   coordinator: ``spec``, ``total_points``;
                             daemon: ``service`` = ``"fleet"``
request         worker → srv —
chunk           srv → worker ``chunk_id``, ``points``: [{``index``,
                             ``point``}], daemon adds ``sweep``
wait            srv → worker ``delay`` (seconds; nothing to lease right now)
done            srv → worker coordinator only: sweep complete, worker may
                             exit (the daemon never says done — new sweeps
                             may arrive at any time)
result          worker → srv ``index``, ``result`` (encoded, see codec),
                             daemon requires ``sweep``
heartbeat       worker → srv — (extends the worker's chunk leases)
goodbye         peer → srv   — (clean disconnect)
ok              srv → worker ``accepted`` (for results: False on duplicates)
error           srv → peer   ``message`` (violation; connection closes)
submit          sub → daemon ``sweep`` (name), ``priority``, ``spec``
                             (a ``spec_artifact`` payload)
submitted       daemon → sub ``sweep``, ``created``, ``state``, ``total``,
                             ``completed``, ``resumed``
status          sub → daemon optional ``sweep`` filter
status_report   daemon → sub ``sweeps``: rows, ``workers``: rows,
                             ``daemon``: info
metrics         sub → daemon —
metrics_report  daemon → sub ``telemetry``: a ``repro.telemetry/1``
                             snapshot (daemon counters, per-sweep
                             throughput/journal-lag gauges, worker EWMAs)
cancel          sub → daemon ``sweep``
cancelled       daemon → sub ``sweep``, ``existed``
fetch           sub → daemon ``sweep``
results         daemon → sub ``sweep``, ``total``, ``results``:
                             [[index, payload], …] (only once done)
pending         daemon → sub ``sweep``, ``state``, ``completed``, ``total``
                             (fetch before the sweep finished)
=============== ============ ===============================================
"""

from __future__ import annotations

import json
import socket
import struct

from repro.errors import ProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "recv_frame",
    "send_frame",
]

#: Version of the coordinator/worker/daemon message schema.  A peer whose
#: version differs from the server's is refused at ``hello`` time —
#: mixed fleets must fail loudly, not corrupt results.  Version 2 added
#: the fleet daemon's auth handshake and submitter verbs.
PROTOCOL_VERSION = 2

#: Upper bound on one frame's JSON payload.  Scenario results carry full
#: per-edge time series, so frames are allowed to be large — but never
#: unbounded: a corrupt length prefix must not turn into a giant allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Serialise ``payload`` and send it as one length-prefixed frame."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frames must be JSON objects, got {type(payload).__name__}"
        )
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    sock.sendall(_LENGTH.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`ProtocolError` for truncated frames (EOF mid-frame), a
    length prefix of zero or beyond :data:`MAX_FRAME_BYTES`, payloads that
    are not valid UTF-8 JSON, and JSON values that are not objects.
    """
    header = _recv_exact(sock, _LENGTH.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    body = _recv_exact(sock, length, allow_eof=False)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frames must be JSON objects, got {type(payload).__name__}"
        )
    return payload


def _recv_exact(
    sock: socket.socket, count: int, *, allow_eof: bool
) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on immediate EOF if allowed."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
