"""Durable, lease-based work queue behind the dispatch coordinator.

The unit of *assignment* is a :class:`Chunk` — a batch of sweep point
indices handed to one worker — while the unit of *completion* is a single
point: workers stream one result frame per point, so a worker that dies
mid-chunk loses only the points it had not yet reported, never finished
work.  Every mutation happens under one lock; the queue never blocks, so
the coordinator's connection handlers stay responsive.

Failure semantics
-----------------

A chunk is either *pending* (in the queue), *leased* (assigned to a named
worker until a deadline), or fully *completed*.  Leases are extended by the
owner's heartbeats and per-point results.  Two paths return lost work to
the queue:

* :meth:`release` — the coordinator saw the worker's connection die (the
  fast path: a SIGKILL'd worker's TCP connection closes immediately);
* lease expiry — a worker that is connected but silent (stalled, swapped
  out, partitioned) past ``lease_timeout`` is presumed dead; its chunks are
  re-queued at the *front* so another worker picks them up next.

Either way only indices without results are re-queued, and duplicate
results — the original worker limping back after its lease was reassigned —
are ignored with first-writer-wins semantics.  Results are deterministic
functions of their point, so which writer wins cannot affect the sweep.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError

__all__ = ["Chunk", "Lease", "WorkQueue"]


@dataclass(slots=True)
class Chunk:
    """A batch of sweep point indices assigned to one worker at a time."""

    chunk_id: int
    indices: tuple[int, ...]


@dataclass(slots=True)
class Lease:
    """One chunk currently assigned to one worker."""

    chunk: Chunk
    owner: str
    deadline: float


@dataclass(slots=True)
class QueueStats:
    """Counters the coordinator reports after a run."""

    chunks_assigned: int = 0
    chunks_reassigned: int = 0
    leases_expired: int = 0
    duplicate_results: int = 0


class WorkQueue:
    """Thread-compatible queue of sweep point indices with chunk leases.

    Not a thread in itself: the caller (one coordinator handler thread per
    worker connection) invokes the methods under the queue's internal lock.
    ``clock`` is injectable for tests; the default is ``time.monotonic``.
    """

    def __init__(
        self,
        total: int,
        *,
        chunk_size: int,
        lease_timeout: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if total < 0:
            raise ConfigurationError(f"total must be >= 0, got {total}")
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if lease_timeout <= 0:
            raise ConfigurationError(
                f"lease_timeout must be positive, got {lease_timeout}"
            )
        self.total = total
        self.lease_timeout = lease_timeout
        self.stats = QueueStats()
        self._clock = clock
        self._lock = threading.Lock()
        self._next_chunk_id = 0
        self._pending: deque[Chunk] = deque()
        self._leases: dict[int, Lease] = {}
        self._results: dict[int, object] = {}
        for start in range(0, total, chunk_size):
            self._pending.append(
                Chunk(
                    chunk_id=self._next_chunk_id,
                    indices=tuple(range(start, min(start + chunk_size, total))),
                )
            )
            self._next_chunk_id += 1

    # ------------------------------------------------------------------
    # Worker-facing operations
    # ------------------------------------------------------------------

    def acquire(self, owner: str) -> Chunk | None:
        """Lease the next chunk to ``owner``; ``None`` if nothing is pending.

        Expired leases are reaped first, so a dead worker's chunks become
        acquirable the moment any live worker asks for more work.
        """
        with self._lock:
            self._expire_stale_leases()
            while self._pending:
                chunk = self._pending.popleft()
                remaining = self._unfinished(chunk)
                if not remaining:
                    continue  # every index got a result while it waited
                chunk = Chunk(chunk_id=chunk.chunk_id, indices=remaining)
                self._leases[chunk.chunk_id] = Lease(
                    chunk=chunk,
                    owner=owner,
                    deadline=self._clock() + self.lease_timeout,
                )
                self.stats.chunks_assigned += 1
                return chunk
            return None

    def heartbeat(self, owner: str) -> int:
        """Extend every lease held by ``owner``; returns how many."""
        with self._lock:
            deadline = self._clock() + self.lease_timeout
            extended = 0
            for lease in self._leases.values():
                if lease.owner == owner:
                    lease.deadline = deadline
                    extended += 1
            return extended

    def complete(self, index: int, result: object, owner: str) -> bool:
        """Record one point's result; ``False`` for duplicates (ignored).

        First writer wins: a result for an index that already has one is
        dropped, which is how a reassigned worker's late results are
        neutralised.  Accepting results from non-leaseholders is deliberate
        — the work is deterministic, so finished work is never wasted just
        because the lease moved on.
        """
        if not 0 <= index < self.total:
            raise ConfigurationError(
                f"result index {index} outside sweep of {self.total} points"
            )
        with self._lock:
            if index in self._results:
                self.stats.duplicate_results += 1
                return False
            self._results[index] = result
            deadline = self._clock() + self.lease_timeout
            for lease in self._leases.values():
                if lease.owner == owner:
                    lease.deadline = deadline
            self._reap_finished_leases()
            return True

    def release(self, owner: str) -> int:
        """Re-queue the unfinished work of every lease held by ``owner``.

        Called when a worker's connection dies.  Returns how many chunks
        went back to the front of the queue.
        """
        with self._lock:
            return self._release_leases(
                [
                    chunk_id
                    for chunk_id, lease in self._leases.items()
                    if lease.owner == owner
                ]
            )

    # ------------------------------------------------------------------
    # Coordinator-facing state
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """Every point of the sweep has a result."""
        with self._lock:
            return len(self._results) == self.total

    @property
    def completed(self) -> int:
        with self._lock:
            return len(self._results)

    def results_by_index(self) -> dict[int, object]:
        """Snapshot of the collected results keyed by point index."""
        with self._lock:
            return dict(self._results)

    def expire_stale_leases(self) -> int:
        """Reap leases past their deadline; returns how many were re-queued.

        The coordinator's serve loop calls this periodically so stalled
        workers are detected even while every live worker is busy (i.e.
        nobody is calling :meth:`acquire`).
        """
        with self._lock:
            return self._expire_stale_leases()

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------

    def _unfinished(self, chunk: Chunk) -> tuple[int, ...]:
        return tuple(i for i in chunk.indices if i not in self._results)

    def _expire_stale_leases(self) -> int:
        now = self._clock()
        stale = [
            chunk_id
            for chunk_id, lease in self._leases.items()
            if lease.deadline <= now
        ]
        self.stats.leases_expired += len(stale)
        return self._release_leases(stale)

    def _release_leases(self, chunk_ids: list[int]) -> int:
        requeued = 0
        for chunk_id in chunk_ids:
            lease = self._leases.pop(chunk_id)
            remaining = self._unfinished(lease.chunk)
            if remaining:
                self._pending.appendleft(
                    Chunk(chunk_id=lease.chunk.chunk_id, indices=remaining)
                )
                self.stats.chunks_reassigned += 1
                requeued += 1
        return requeued

    def _reap_finished_leases(self) -> None:
        finished = [
            chunk_id
            for chunk_id, lease in self._leases.items()
            if not self._unfinished(lease.chunk)
        ]
        for chunk_id in finished:
            del self._leases[chunk_id]
