"""The dispatch coordinator: serve a sweep as a work queue over TCP.

``run_sweep(spec, dispatch=DispatchSpec(...))`` lands here.  The
coordinator turns the spec's points into JSON wire payloads up front —
failing loudly if any point is not portable — then serves them to workers
(:mod:`repro.dispatch.worker`) over the length-prefixed JSON protocol
(:mod:`repro.dispatch.protocol`): workers pull chunks from the lease-based
:class:`~repro.dispatch.queue.WorkQueue`, execute each point through the
same ``_execute_point`` path a local pool uses, and stream one result frame
per point.  Results are decoded against the coordinator's own spec objects
(:mod:`repro.dispatch.codec`) and reassembled in spec order through the
same :func:`~repro.experiments.sweep.ordered_results` the pool executor
uses, so a dispatched :class:`SweepResult` is indistinguishable from a
``jobs=1`` run (byte-identical ``to_artifact()`` modulo the ``jobs`` /
``wall_clock_seconds`` run metadata).

Worker failures are part of the contract, not an error: a dead connection
releases the worker's leases immediately, a silent-but-connected worker
loses its leases after ``lease_timeout``, and in both cases only points
*without* results are re-queued — finished work always counts, and late
duplicate results are ignored.  The sweep completes as long as at least one
worker keeps making progress; the coordinator itself never executes points.
"""

from __future__ import annotations

import socketserver
import threading
import time
from dataclasses import dataclass

from repro.dispatch.codec import decode_result
from repro.dispatch.protocol import PROTOCOL_VERSION, recv_frame, send_frame
from repro.dispatch.queue import WorkQueue
from repro.errors import ConfigurationError, DispatchError, ProtocolError
from repro.experiments.sweep import (
    SweepPoint,
    SweepResult,
    SweepSpec,
    ordered_results,
)

__all__ = ["Coordinator", "DispatchSpec", "parse_hostport", "run_dispatched"]


def parse_hostport(text: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` CLI argument."""
    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise ConfigurationError(f"expected HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ConfigurationError(f"bad port in {text!r}: {exc}") from exc
    if not 0 <= port <= 65535:
        raise ConfigurationError(f"port must be in [0, 65535], got {port}")
    return host, port


@dataclass(slots=True)
class DispatchSpec:
    """How to serve one sweep to remote workers.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`Coordinator.address` before starting workers — the pattern the
    tests and examples use); a fixed port is the cross-host CLI pattern.
    ``chunk_size=None`` sizes chunks to about a sixteenth of the sweep so
    a handful of workers interleave while keeping per-chunk overhead low.
    """

    host: str = "127.0.0.1"
    port: int = 0
    #: Points per lease; ``None`` picks ``max(1, total // 16)``.
    chunk_size: int | None = None
    #: Seconds of worker silence (no heartbeat, no result) before its
    #: chunks are presumed lost and re-queued.
    lease_timeout: float = 30.0
    #: Serve-loop tick and the delay quoted to workers in ``wait`` replies.
    poll_interval: float = 0.5

    def __post_init__(self) -> None:
        if not self.host:
            raise ConfigurationError("dispatch host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(
                f"dispatch port must be in [0, 65535], got {self.port}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1 or None, got {self.chunk_size}"
            )
        if self.lease_timeout <= 0:
            raise ConfigurationError(
                f"lease_timeout must be positive, got {self.lease_timeout}"
            )
        if self.poll_interval <= 0:
            raise ConfigurationError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )

    @classmethod
    def parse(cls, text: str, **overrides) -> "DispatchSpec":
        """A spec from the CLI's ``--dispatch HOST:PORT`` argument."""
        host, port = parse_hostport(text)
        return cls(host=host, port=port, **overrides)


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class Coordinator:
    """One sweep served as a durable work queue of JSON-encoded points.

    Construction binds the listening socket (so ``port=0`` callers can read
    :attr:`address` and start workers first) and validates that every point
    round-trips through :meth:`SweepPoint.from_dict` — a sweep with
    non-portable workloads must fail before any worker connects, not
    mid-run on a remote host.
    """

    def __init__(self, spec: SweepSpec, dispatch: DispatchSpec | None = None) -> None:
        self.spec = spec
        self.dispatch = dispatch or DispatchSpec()
        self._point_payloads: list[dict] = []
        for point in spec.points:
            payload = point.as_dict()
            # from_dict raises ConfigurationError for non-portable points,
            # naming the offending workload — the loud-failure contract.
            SweepPoint.from_dict(payload)
            self._point_payloads.append(payload)
        total = len(spec.points)
        chunk_size = self.dispatch.chunk_size or max(1, total // 16)
        self.queue = WorkQueue(
            total,
            chunk_size=chunk_size,
            lease_timeout=self.dispatch.lease_timeout,
        )
        self._complete = threading.Event()
        if self.queue.done:  # empty sweep: nothing to serve
            self._complete.set()
        self._workers_seen: set[str] = set()
        self._owner_counter = 0
        self._lock = threading.Lock()
        handler = self._handler_class()
        self._server = _ThreadingTCPServer(
            (self.dispatch.host, self.dispatch.port), handler
        )
        self._server_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` workers should connect to."""
        host, port = self._server.server_address[:2]
        return host, port

    @property
    def workers_seen(self) -> int:
        """Distinct worker connections that said hello so far."""
        with self._lock:
            return len(self._workers_seen)

    def start(self) -> None:
        """Begin accepting worker connections in the background (idempotent).

        :meth:`serve` calls this itself; call it directly when the
        handshake must be exercised before — or without — the blocking
        serve loop (the protocol tests do).
        """
        if self._server_thread is None:
            self._server_thread = threading.Thread(
                target=self._server.serve_forever,
                kwargs={"poll_interval": min(0.1, self.dispatch.poll_interval)},
                name="dispatch-coordinator",
                daemon=True,
            )
            self._server_thread.start()

    def serve(self) -> SweepResult:
        """Serve the queue until every point has a result; assemble in order.

        Blocks the calling thread; connection handling happens on the
        server's daemon threads.  The serve loop doubles as the stalled-
        worker detector, sweeping expired leases every ``poll_interval``.
        """
        start = time.perf_counter()
        self.start()
        try:
            while not self._complete.is_set():
                self._complete.wait(timeout=self.dispatch.poll_interval)
                self.queue.expire_stale_leases()
        finally:
            self.shutdown()
            self._server_thread.join(timeout=5.0)
        elapsed = time.perf_counter() - start
        results = ordered_results(
            len(self.spec.points), self.queue.results_by_index()
        )
        return SweepResult(
            spec=self.spec,
            results=results,
            jobs=max(1, len(self._workers_seen)),
            wall_clock_seconds=elapsed,
        )

    def shutdown(self) -> None:
        """Stop accepting connections and close the listening socket."""
        if self._server_thread is not None:
            self._server.shutdown()
        self._server.server_close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _register(self, name: object) -> str:
        with self._lock:
            self._owner_counter += 1
            owner = f"{name or 'worker'}#{self._owner_counter}"
            self._workers_seen.add(owner)
            return owner

    def _handler_class(self) -> type:
        coordinator = self

        class Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:  # pragma: no cover - thin shim
                coordinator._handle_connection(self.request)

        return Handler

    def _handle_connection(self, sock) -> None:
        owner = None
        try:
            hello = recv_frame(sock)
            if hello is None:
                return
            if hello.get("type") != "hello":
                raise ProtocolError(
                    f"expected hello, got {hello.get('type')!r}"
                )
            if hello.get("protocol") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"protocol version mismatch: coordinator speaks "
                    f"{PROTOCOL_VERSION}, worker {hello.get('protocol')!r}"
                )
            owner = self._register(hello.get("worker"))
            send_frame(
                sock,
                {
                    "type": "welcome",
                    "spec": self.spec.name,
                    "total_points": len(self.spec.points),
                },
            )
            while True:
                frame = recv_frame(sock)
                if frame is None:
                    return
                reply = self._reply_to(frame, owner)
                send_frame(sock, reply)
                if frame.get("type") == "goodbye":
                    return
        except ProtocolError as exc:
            try:
                send_frame(sock, {"type": "error", "message": str(exc)})
            except OSError:
                pass
        except OSError:
            pass  # connection died; the finally clause reassigns its work
        finally:
            if owner is not None:
                self.queue.release(owner)

    def _reply_to(self, frame: dict, owner: str) -> dict:
        kind = frame.get("type")
        if kind == "request":
            chunk = self.queue.acquire(owner)
            if chunk is not None:
                return {
                    "type": "chunk",
                    "chunk_id": chunk.chunk_id,
                    "points": [
                        {"index": index, "point": self._point_payloads[index]}
                        for index in chunk.indices
                    ],
                }
            if self.queue.done:
                return {"type": "done"}
            return {"type": "wait", "delay": self.dispatch.poll_interval}
        if kind == "result":
            index = frame.get("index")
            if not isinstance(index, int) or not 0 <= index < len(self.spec.points):
                raise ProtocolError(f"result with bad index {index!r}")
            result = decode_result(frame.get("result"), self.spec.points[index])
            accepted = self.queue.complete(index, result, owner)
            if self.queue.done:
                self._complete.set()
            return {"type": "ok", "accepted": accepted}
        if kind == "heartbeat":
            self.queue.heartbeat(owner)
            return {"type": "ok", "done": self.queue.done}
        if kind == "goodbye":
            return {"type": "ok"}
        raise ProtocolError(f"unknown message type {kind!r}")


def run_dispatched(spec: SweepSpec, dispatch: DispatchSpec) -> SweepResult:
    """Serve ``spec`` at ``dispatch``'s address until workers complete it.

    The ``run_sweep(spec, dispatch=...)`` execution backend.  Raises
    :class:`DispatchError` if the sweep cannot be completed (e.g. the
    results are missing indices after the server stops — which only
    happens if :meth:`Coordinator.serve` is interrupted externally).
    """
    if not isinstance(dispatch, DispatchSpec):
        raise DispatchError(
            f"dispatch= expects a DispatchSpec, got {type(dispatch).__name__}"
        )
    return Coordinator(spec, dispatch).serve()
