"""Per-worker heartbeat/health tracking and adaptive chunk sizing.

The one-shot coordinator sizes every chunk identically, which is fine for
a fleet of clones but wasteful for the heterogeneous hosts a long-lived
daemon accumulates: a chunk sized for a fast machine strands a slow one
holding work everyone else could have finished — the classic straggler
tail.  The daemon therefore tracks, per worker connection:

* liveness — the last time any frame (request, result, heartbeat)
  arrived, against a silence threshold;
* observed throughput — an exponentially weighted moving average of
  completed points per second, updated on every result frame.

:meth:`HealthTracker.chunk_points_for` turns the throughput estimate into
a per-worker chunk size targeting ``target_chunk_seconds`` of work, so a
host that completes 10 points/s is handed ~10× the chunk of a host doing
1 point/s and both drain their final lease at roughly the same moment.
Workers with no history yet get a deliberately small probe chunk — the
cost of underestimating a fast host for one lease is far lower than
parking a sweep's tail on a slow one.

Chunk sizing never touches result *values*: points are deterministic
functions of their payloads, so adaptive assignment changes wall-clock
shape only, never bytes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError

__all__ = ["HealthTracker", "WorkerHealth"]

#: Weight of the newest inter-result interval in the throughput EWMA.
_EWMA_ALPHA = 0.3


@dataclass(slots=True)
class WorkerHealth:
    """One worker connection's observed behaviour."""

    worker: str
    connected_at: float
    last_seen: float
    points_completed: int = 0
    heartbeats: int = 0
    #: EWMA of completed points per second; ``None`` until the first result.
    points_per_sec: float | None = None
    connected: bool = True

    def as_row(self, now: float, alive_after: float) -> dict[str, object]:
        """A JSON-safe status row for ``fleet status`` reports."""
        silence = max(0.0, now - self.last_seen)
        return {
            "worker": self.worker,
            "connected": self.connected,
            "alive": self.connected and silence <= alive_after,
            "silence_seconds": round(silence, 3),
            "points_completed": self.points_completed,
            "heartbeats": self.heartbeats,
            "points_per_sec": (
                None
                if self.points_per_sec is None
                else round(self.points_per_sec, 4)
            ),
        }


class HealthTracker:
    """Thread-safe registry of :class:`WorkerHealth`, one per connection.

    ``clock`` is injectable for tests; the default is ``time.monotonic``.
    """

    def __init__(
        self,
        *,
        target_chunk_seconds: float = 5.0,
        probe_chunk_points: int = 1,
        max_chunk_points: int = 64,
        alive_after: float = 15.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if target_chunk_seconds <= 0:
            raise ConfigurationError(
                f"target_chunk_seconds must be positive, got {target_chunk_seconds}"
            )
        if probe_chunk_points < 1:
            raise ConfigurationError(
                f"probe_chunk_points must be >= 1, got {probe_chunk_points}"
            )
        if max_chunk_points < probe_chunk_points:
            raise ConfigurationError(
                f"max_chunk_points ({max_chunk_points}) must be >= "
                f"probe_chunk_points ({probe_chunk_points})"
            )
        self.target_chunk_seconds = target_chunk_seconds
        self.probe_chunk_points = probe_chunk_points
        self.max_chunk_points = max_chunk_points
        self.alive_after = alive_after
        self._clock = clock
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerHealth] = {}
        self._last_result_at: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------

    def on_connect(self, owner: str) -> None:
        now = self._clock()
        with self._lock:
            self._workers[owner] = WorkerHealth(
                worker=owner, connected_at=now, last_seen=now
            )

    def on_frame(self, owner: str) -> None:
        """Any frame from ``owner`` proves liveness."""
        now = self._clock()
        with self._lock:
            health = self._workers.get(owner)
            if health is not None:
                health.last_seen = now

    def on_heartbeat(self, owner: str) -> None:
        now = self._clock()
        with self._lock:
            health = self._workers.get(owner)
            if health is not None:
                health.last_seen = now
                health.heartbeats += 1

    def on_result(self, owner: str) -> None:
        """A completed point: update liveness and the throughput EWMA."""
        now = self._clock()
        with self._lock:
            health = self._workers.get(owner)
            if health is None:
                return
            health.last_seen = now
            health.points_completed += 1
            previous = self._last_result_at.get(owner)
            self._last_result_at[owner] = now
            if previous is None:
                return
            interval = now - previous
            if interval <= 0:
                return
            rate = 1.0 / interval
            if health.points_per_sec is None:
                health.points_per_sec = rate
            else:
                health.points_per_sec += _EWMA_ALPHA * (
                    rate - health.points_per_sec
                )

    def on_disconnect(self, owner: str) -> None:
        with self._lock:
            health = self._workers.get(owner)
            if health is not None:
                health.connected = False
            self._last_result_at.pop(owner, None)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def chunk_points_for(self, owner: str) -> int:
        """How many points to lease ``owner`` next (adaptive, bounded).

        ``target_chunk_seconds × observed points/sec``, clamped to
        ``[1, max_chunk_points]``; a worker with no throughput history yet
        gets the small probe chunk.
        """
        with self._lock:
            health = self._workers.get(owner)
            rate = None if health is None else health.points_per_sec
        if rate is None or rate <= 0:
            return self.probe_chunk_points
        sized = int(round(rate * self.target_chunk_seconds))
        return max(1, min(self.max_chunk_points, sized))

    def snapshot(self) -> list[dict[str, object]]:
        """Status rows for every worker this daemon has seen, stable order."""
        now = self._clock()
        with self._lock:
            return [
                health.as_row(now, self.alive_after)
                for _, health in sorted(self._workers.items())
            ]
