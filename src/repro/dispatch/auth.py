"""Shared-secret HMAC authentication for fleet connections.

The one-shot :class:`~repro.dispatch.coordinator.Coordinator` trusts its
LAN: anyone who can reach the port can pull work.  A long-lived
:class:`~repro.dispatch.daemon.FleetDaemon` cannot — workers and submitters
join from anywhere, so every connection must prove it knows the fleet
secret *before* any frame touches the queue.

The scheme is a classic challenge/response over the existing framing:

1. the peer sends ``hello`` (role, name, protocol version) as usual;
2. the daemon replies ``challenge`` carrying a fresh random *nonce*
   (one per connection, never reused, so a captured exchange cannot be
   replayed);
3. the peer replies ``auth`` with ``mac = HMAC-SHA256(secret,
   nonce || role || name)`` hex-encoded;
4. the daemon verifies with :func:`hmac.compare_digest` (constant-time,
   no timing oracle) and only then sends ``welcome``.

Binding the *role* and *name* into the MAC means a frame recorded from a
worker handshake cannot be replayed to authenticate a submitter, and vice
versa.  The secret itself never crosses the wire.  A daemon constructed
without a secret skips the challenge entirely — the trusted-LAN mode the
one-shot coordinator already provides — and the CLI reads the secret from
the ``REPRO_FLEET_SECRET`` environment variable so it never appears in
``argv`` or shell history.

This is deliberately *authentication only*: frames are still cleartext on
the wire.  TLS for WAN deployments is the named follow-up in ROADMAP.md.
"""

from __future__ import annotations

import hmac
import os
import secrets

from repro.errors import AuthenticationError

__all__ = [
    "SECRET_ENV_VAR",
    "compute_mac",
    "issue_nonce",
    "secret_from_env",
    "verify_mac",
]

#: Where the CLI (``fleet serve``/``submit``/… and ``worker``) looks for
#: the shared secret.  Unset means unauthenticated (trusted-LAN) mode.
SECRET_ENV_VAR = "REPRO_FLEET_SECRET"

#: Bytes of entropy per challenge nonce (hex-encoded on the wire).
_NONCE_BYTES = 32


def issue_nonce() -> str:
    """A fresh per-connection challenge nonce (hex)."""
    return secrets.token_hex(_NONCE_BYTES)


def _message(nonce: str, role: str, name: str) -> bytes:
    # NUL separators keep ("ab", "c") and ("a", "bc") from colliding.
    return b"\x00".join(
        part.encode("utf-8") for part in ("repro-fleet-v1", nonce, role, name)
    )


def compute_mac(secret: str, nonce: str, role: str, name: str) -> str:
    """The hex MAC a peer presents for ``nonce`` as ``role``/``name``."""
    if not secret:
        raise AuthenticationError("cannot compute a MAC with an empty secret")
    return hmac.new(
        secret.encode("utf-8"), _message(nonce, role, name), "sha256"
    ).hexdigest()


def verify_mac(secret: str, nonce: str, role: str, name: str, mac: object) -> bool:
    """Constant-time check of a presented MAC; ``False`` for any mismatch.

    Never raises for bad *peer* input (a non-string MAC is simply wrong);
    an empty *local* secret is a configuration bug and raises.
    """
    if not isinstance(mac, str):
        return False
    expected = compute_mac(secret, nonce, role, name)
    return hmac.compare_digest(expected, mac)


def secret_from_env(env: dict[str, str] | None = None) -> str | None:
    """The fleet secret from :data:`SECRET_ENV_VAR`, ``None`` if unset/empty."""
    mapping = os.environ if env is None else env
    secret = mapping.get(SECRET_ENV_VAR)
    return secret or None
