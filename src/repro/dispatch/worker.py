"""The dispatch worker: pull chunks, execute points, stream results.

``repro-experiments worker --connect HOST:PORT`` lands here.  A worker is a
single TCP connection to a coordinator: it pulls chunk leases, rebuilds
each point from its JSON payload (:meth:`SweepPoint.from_dict` — the same
portable codec the coordinator validated against), executes it through the
*same* ``_execute_point`` path a local ``run_sweep`` uses, and streams one
result frame per point so nothing finished is ever lost if the process dies
mid-chunk.  A background thread heartbeats every few seconds to keep the
worker's leases alive through long simulations.

Workers are expendable by design: once the ``welcome`` handshake is done,
a dropped connection or coordinator shutdown is a normal way for a run to
end (the coordinator may finish and exit while this worker is mid-point),
reported in :attr:`WorkerStats.disconnected` rather than raised.  Failures
*before* the handshake — nobody listening, protocol version mismatch, a
failed auth challenge — are real errors and raise :class:`DispatchError`.

The same function serves both servers.  Against a one-shot
:class:`~repro.dispatch.coordinator.Coordinator` nothing changed: pull
chunks until ``done``.  Against a :class:`~repro.dispatch.daemon.FleetDaemon`
the worker additionally answers the HMAC ``challenge`` (``secret=``,
defaulting to the ``REPRO_FLEET_SECRET`` environment variable), tags each
result with the sweep name its chunk named — the daemon serves many sweeps
at once — and, because a daemon never says ``done``, uses ``max_idle`` to
decide when a quiet queue means "go home" rather than "wait for more".

:class:`~repro.dispatch.faults.FaultPlan` hooks the failure drills in:
``run_worker(..., faults=FaultPlan.parse("crash:3"))`` dies hard after
three points, exactly what the reassignment tests and CI drills exercise.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass

from repro.dispatch.auth import compute_mac, secret_from_env
from repro.dispatch.codec import encode_result
from repro.dispatch.faults import FaultPlan
from repro.dispatch.protocol import PROTOCOL_VERSION, recv_frame, send_frame
from repro.errors import (
    AuthenticationError,
    CoordinatorUnreachable,
    DispatchError,
    ProtocolError,
)
from repro.experiments.sweep import SweepPoint, _execute_point

__all__ = ["WorkerStats", "run_worker"]


@dataclass(slots=True)
class WorkerStats:
    """What one worker connection did, for logs and tests."""

    worker: str = "worker"
    points_executed: int = 0
    chunks_received: int = 0
    #: Results the coordinator had already received from another worker
    #: (this worker raced a reassignment and lost — harmless).
    duplicate_results: int = 0
    waits: int = 0
    heartbeats: int = 0
    #: Distinct sweep names this worker pulled chunks for (fleet daemons
    #: serve many sweeps over one connection; coordinators exactly one).
    sweeps_served: int = 0
    #: The connection ended without a clean goodbye (coordinator finished
    #: and went away, or the link dropped).  Normal at end of run.
    disconnected: bool = False
    #: The worker left because the fleet queue stayed empty past
    #: ``max_idle`` — the daemon-side analogue of ``done``.
    idled_out: bool = False


def _connect(host: str, port: int, timeout: float, retry_delay: float) -> socket.socket:
    """Dial the coordinator, retrying until ``timeout`` seconds elapse.

    Workers routinely start before the coordinator binds (CI launches both
    concurrently), so refusal is retried rather than fatal.
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            sock.settimeout(None)
            return sock
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise CoordinatorUnreachable(
                    f"could not reach coordinator at {host}:{port} "
                    f"within {timeout:g}s: {exc}"
                ) from exc
            time.sleep(retry_delay)


def run_worker(
    host: str,
    port: int,
    *,
    name: str | None = None,
    faults: FaultPlan | None = None,
    heartbeat_interval: float = 2.0,
    connect_timeout: float = 30.0,
    connect_retry_delay: float = 0.2,
    secret: str | None = None,
    max_idle: float | None = None,
) -> WorkerStats:
    """Serve one coordinator or fleet daemon; returns stats.

    Blocks the calling thread.  ``faults`` injects a failure drill (see
    :mod:`repro.dispatch.faults`); ``heartbeat_interval`` must stay well
    under the server's lease timeout or healthy long-running points will
    be spuriously reassigned (harmless for correctness, wasteful for
    wall-clock).  ``secret`` (default: the ``REPRO_FLEET_SECRET``
    environment variable) answers a fleet daemon's auth challenge;
    ``max_idle`` bounds how long the worker waits through an empty queue
    before leaving cleanly — ``None`` waits forever, the right choice
    against a one-shot coordinator, which says ``done`` when it means it.
    """
    stats = WorkerStats(worker=name or f"worker-{os.getpid()}")
    if secret is None:
        secret = secret_from_env()
    if max_idle is not None and max_idle <= 0:
        raise DispatchError(f"max_idle must be positive, got {max_idle}")
    sock = _connect(host, port, connect_timeout, connect_retry_delay)
    lock = threading.Lock()
    stop = threading.Event()
    heartbeats_suppressed = threading.Event()

    def rpc(payload: dict) -> dict:
        with lock:
            send_frame(sock, payload)
            reply = recv_frame(sock)
        if reply is None:
            raise ProtocolError("coordinator closed the connection")
        if reply.get("type") == "error":
            raise ProtocolError(f"coordinator refused: {reply.get('message')}")
        return reply

    # Handshake failures are genuine errors — nothing to tolerate yet.
    try:
        welcome = rpc(
            {
                "type": "hello",
                "role": "worker",
                "worker": stats.worker,
                "protocol": PROTOCOL_VERSION,
            }
        )
        if welcome.get("type") == "challenge":
            # A fleet daemon with a secret configured (repro.dispatch.auth).
            if not secret:
                raise AuthenticationError(
                    "server demands authentication but no fleet secret is "
                    "configured (set REPRO_FLEET_SECRET)"
                )
            welcome = rpc(
                {
                    "type": "auth",
                    "mac": compute_mac(
                        secret, str(welcome.get("nonce")), "worker", stats.worker
                    ),
                }
            )
        if welcome.get("type") != "welcome":
            raise ProtocolError(f"expected welcome, got {welcome.get('type')!r}")
    except AuthenticationError:
        sock.close()
        raise
    except (ProtocolError, OSError) as exc:
        sock.close()
        raise DispatchError(f"handshake with {host}:{port} failed: {exc}") from exc

    def heartbeat_loop() -> None:
        while not stop.wait(heartbeat_interval):
            if heartbeats_suppressed.is_set():
                continue
            try:
                rpc({"type": "heartbeat"})
            except (ProtocolError, OSError):
                return
            stats.heartbeats += 1

    heartbeat_thread = threading.Thread(
        target=heartbeat_loop, name=f"{stats.worker}-heartbeat", daemon=True
    )
    heartbeat_thread.start()

    fault_fired = False

    def maybe_inject_fault() -> bool:
        """Fire the drill once its point count is reached.

        Returns True if the worker should stop (disconnect drill); a crash
        drill never returns.
        """
        nonlocal fault_fired
        if faults is None or fault_fired:
            return False
        if not faults.triggers_after(stats.points_executed):
            return False
        fault_fired = True
        if faults.kind == "crash":
            # Hard death: no goodbye, no flush — the kernel closes the
            # socket, just like SIGKILL/OOM.  Exit code marks the drill.
            os._exit(137)
        if faults.kind == "disconnect":
            sock.close()
            stats.disconnected = True
            return True
        # stall: go silent (no execution, no heartbeats) past the lease.
        heartbeats_suppressed.set()
        time.sleep(faults.stall_seconds)
        heartbeats_suppressed.clear()
        return False

    seen_sweeps: set[str] = set()
    idle_since: float | None = None
    try:
        while True:
            reply = rpc({"type": "request"})
            kind = reply.get("type")
            if kind == "done":
                try:
                    rpc({"type": "goodbye"})
                except (ProtocolError, OSError):
                    pass
                return stats
            if kind == "wait":
                stats.waits += 1
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                if max_idle is not None and now - idle_since >= max_idle:
                    # Fleet daemons never say done; a queue this quiet
                    # means the fleet has drained and we may leave.
                    stats.idled_out = True
                    try:
                        rpc({"type": "goodbye"})
                    except (ProtocolError, OSError):
                        pass
                    return stats
                time.sleep(float(reply.get("delay", 0.2)))
                continue
            if kind != "chunk":
                raise ProtocolError(f"unexpected reply {kind!r} to request")
            idle_since = None
            stats.chunks_received += 1
            sweep = reply.get("sweep")
            if isinstance(sweep, str) and sweep not in seen_sweeps:
                seen_sweeps.add(sweep)
                stats.sweeps_served = len(seen_sweeps)
            for entry in reply.get("points", ()):
                # Checked before execution as well as after each result, so
                # after_points=0 drills die holding an untouched chunk.
                if maybe_inject_fault():
                    return stats
                point = SweepPoint.from_dict(entry["point"])
                result = _execute_point(
                    (
                        point.config,
                        point.workload,
                        point.read_workload,
                        point.scenario,
                        point.trace,
                    )
                )
                result_frame = {
                    "type": "result",
                    "index": entry["index"],
                    "result": encode_result(result),
                }
                if sweep is not None:
                    result_frame["sweep"] = sweep
                ack = rpc(result_frame)
                stats.points_executed += 1
                if not ack.get("accepted", True):
                    stats.duplicate_results += 1
                if maybe_inject_fault():
                    return stats
    except (ProtocolError, OSError):
        # The coordinator finishing (and closing) while we worked on a
        # since-reassigned point is the normal end of a run.
        stats.disconnected = True
        return stats
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass
