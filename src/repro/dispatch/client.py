"""Submitter-side client for the fleet daemon.

Everything a process needs to *use* a :class:`~repro.dispatch.daemon.FleetDaemon`
without being a worker: submit named sweeps with priorities, poll status,
cancel, and fetch finished results.  The crown piece is
:func:`run_fleet_sweep` — the ``run_sweep(spec, dispatch=FleetSpec(...))``
execution backend: it submits the sweep (named by content fingerprint, so
re-running the same experiment resumes rather than recomputes), waits for
the daemon to drain it, fetches the wire results and decodes them against
its *own* spec objects (:mod:`repro.dispatch.codec`), so a fleet-served
:class:`SweepResult` is byte-identical to a ``jobs=1`` run — the same
contract the one-shot coordinator honours.

Every operation opens a fresh authenticated connection.  That costs a
handshake per call but buys the property the failure drills rely on: a
daemon restart between two polls is invisible — the next call simply
dials the new process, which has already restored the sweep from its
journal.  :meth:`FleetClient.wait_for` leans into this by retrying
connection failures until its deadline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

from repro.dispatch.auth import compute_mac, secret_from_env
from repro.dispatch.journal import sweep_fingerprint
from repro.dispatch.protocol import PROTOCOL_VERSION, recv_frame, send_frame
from repro.dispatch.worker import _connect
from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    DispatchError,
    ProtocolError,
)
from repro.experiments.sweep import (
    SweepResult,
    SweepSpec,
    ordered_results,
    spec_artifact,
)

__all__ = ["FleetClient", "FleetSpec", "run_fleet_sweep"]


@dataclass(slots=True)
class FleetSpec:
    """How to hand a sweep to a fleet daemon instead of self-coordinating.

    The ``dispatch=`` twin of :class:`~repro.dispatch.coordinator.DispatchSpec`:
    passing one to :func:`~repro.experiments.sweep.run_sweep` (or
    ``--fleet HOST:PORT`` on the CLI) submits the sweep to a daemon and
    waits, instead of binding a coordinator port of its own.
    """

    host: str = "127.0.0.1"
    port: int = 0
    #: Higher priorities drain first; ties serve in submission order.
    priority: int = 0
    #: Shared secret; ``None`` falls back to ``REPRO_FLEET_SECRET``.
    secret: str | None = None
    #: Override the content-derived sweep name (rarely needed).
    name: str | None = None
    #: Seconds between status polls while waiting.
    poll_interval: float = 0.5
    #: How long to keep retrying an unreachable daemon per operation.
    connect_timeout: float = 30.0
    #: Overall deadline for :func:`run_fleet_sweep`; ``None`` waits forever
    #: (the daemon may legitimately be restarting mid-sweep).
    wait_timeout: float | None = None

    def __post_init__(self) -> None:
        if not self.host:
            raise ConfigurationError("fleet host must be non-empty")
        if not 0 < self.port <= 65535:
            raise ConfigurationError(
                f"fleet port must be in [1, 65535], got {self.port}"
            )
        if self.poll_interval <= 0:
            raise ConfigurationError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )
        if self.connect_timeout <= 0:
            raise ConfigurationError(
                f"connect_timeout must be positive, got {self.connect_timeout}"
            )
        if self.secret is None:
            self.secret = secret_from_env()

    @classmethod
    def parse(cls, text: str, **overrides) -> "FleetSpec":
        """A spec from the CLI's ``--fleet HOST:PORT`` argument."""
        from repro.dispatch.coordinator import parse_hostport

        host, port = parse_hostport(text)
        return cls(host=host, port=port, **overrides)


class FleetClient:
    """One submitter's view of a daemon; every call is its own connection."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        secret: str | None = None,
        client_name: str = "submitter",
        connect_timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.secret = secret
        self.client_name = client_name
        self.connect_timeout = connect_timeout

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def submit(
        self,
        spec: SweepSpec | Mapping[str, object],
        *,
        name: str | None = None,
        priority: int = 0,
    ) -> dict:
        """Submit a sweep (a :class:`SweepSpec` or its artifact payload)."""
        payload = (
            spec_artifact(spec) if isinstance(spec, SweepSpec) else dict(spec)
        )
        frame = {"type": "submit", "priority": priority, "spec": payload}
        if name is not None:
            frame["sweep"] = name
        return self._roundtrip(frame, expect="submitted")

    def status(self, name: str | None = None) -> dict:
        frame: dict = {"type": "status"}
        if name is not None:
            frame["sweep"] = name
        return self._roundtrip(frame, expect="status_report")

    def metrics(self) -> dict:
        """Live daemon telemetry as a ``repro.telemetry/1`` section.

        The ``metrics_report`` reply carries the daemon's own counters and
        per-sweep/per-worker gauges under ``"telemetry"`` — the same schema
        :func:`repro.telemetry.validate_telemetry` checks in artifacts.
        """
        return self._roundtrip({"type": "metrics"}, expect="metrics_report")

    def cancel(self, name: str) -> dict:
        return self._roundtrip(
            {"type": "cancel", "sweep": name}, expect="cancelled"
        )

    def fetch(self, name: str) -> dict:
        """``results`` once done, ``pending`` with progress before that."""
        return self._roundtrip(
            {"type": "fetch", "sweep": name}, expect=("results", "pending")
        )

    def wait_for(
        self,
        name: str,
        *,
        poll_interval: float = 0.5,
        timeout: float | None = None,
    ) -> dict:
        """Poll until ``name`` is done; returns the ``results`` reply.

        Connection failures are retried until ``timeout`` — a daemon
        bouncing through a restart mid-wait is expected, not fatal.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                reply = self.fetch(name)
                if reply["type"] == "results":
                    return reply
            except (DispatchError, OSError) as exc:
                if isinstance(exc, AuthenticationError):
                    raise  # a wrong secret will not get righter by waiting
                if deadline is not None and time.monotonic() >= deadline:
                    raise
            if deadline is not None and time.monotonic() >= deadline:
                raise DispatchError(
                    f"sweep {name!r} did not finish within {timeout:g}s"
                )
            time.sleep(poll_interval)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _roundtrip(
        self, frame: dict, *, expect: str | tuple[str, ...]
    ) -> dict:
        expected = (expect,) if isinstance(expect, str) else expect
        sock = _connect(
            self.host, self.port, self.connect_timeout, retry_delay=0.2
        )
        try:
            self._handshake(sock)
            send_frame(sock, frame)
            reply = recv_frame(sock)
            if reply is None:
                raise ProtocolError("daemon closed the connection mid-call")
            if reply.get("type") == "error":
                raise ProtocolError(f"daemon refused: {reply.get('message')}")
            if reply.get("type") not in expected:
                raise ProtocolError(
                    f"expected {' or '.join(expected)}, got {reply.get('type')!r}"
                )
            try:
                send_frame(sock, {"type": "goodbye"})
                recv_frame(sock)
            except (ProtocolError, OSError):
                pass  # best-effort clean close; the reply is already in hand
            return reply
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _handshake(self, sock) -> None:
        send_frame(
            sock,
            {
                "type": "hello",
                "role": "submitter",
                "worker": self.client_name,
                "protocol": PROTOCOL_VERSION,
            },
        )
        reply = recv_frame(sock)
        if reply is None:
            raise ProtocolError("daemon closed the connection at hello")
        if reply.get("type") == "challenge":
            if not self.secret:
                raise AuthenticationError(
                    "daemon demands authentication but no fleet secret is "
                    "configured (set REPRO_FLEET_SECRET)"
                )
            send_frame(
                sock,
                {
                    "type": "auth",
                    "mac": compute_mac(
                        self.secret,
                        str(reply.get("nonce")),
                        "submitter",
                        self.client_name,
                    ),
                },
            )
            reply = recv_frame(sock)
            if reply is None:
                raise AuthenticationError("daemon hung up after auth")
        if reply.get("type") == "error":
            message = str(reply.get("message"))
            if "secret" in message or "auth" in message.lower():
                raise AuthenticationError(f"daemon refused: {message}")
            raise ProtocolError(f"daemon refused: {message}")
        if reply.get("type") != "welcome":
            raise ProtocolError(
                f"expected welcome, got {reply.get('type')!r}"
            )


def fleet_sweep_name(spec: SweepSpec) -> str:
    """The content-derived name :func:`run_fleet_sweep` submits under.

    Built from the spec's name plus a fingerprint prefix, so submitting
    the same grid twice resumes it while two different grids that happen
    to share a human name never collide in the daemon or its journal.
    """
    digest = sweep_fingerprint(spec).split(":", 1)[1]
    return f"{spec.name}-{digest[:12]}"


def run_fleet_sweep(spec: SweepSpec, fleet: FleetSpec) -> SweepResult:
    """Serve ``spec`` through a fleet daemon; byte-identical to ``jobs=1``.

    The ``run_sweep(spec, dispatch=FleetSpec(...))`` execution backend:
    submit (named by content, so identical re-runs resume from the
    daemon's journal), wait, fetch, decode against our own spec objects,
    reassemble in spec order through the shared
    :func:`~repro.experiments.sweep.ordered_results`.
    """
    from repro.dispatch.codec import decode_result

    start = time.perf_counter()
    client = FleetClient(
        fleet.host,
        fleet.port,
        secret=fleet.secret,
        connect_timeout=fleet.connect_timeout,
    )
    name = fleet.name or fleet_sweep_name(spec)
    submitted = client.submit(spec, name=name, priority=fleet.priority)
    if submitted.get("total") != len(spec.points):
        raise ProtocolError(
            f"daemon acknowledged {submitted.get('total')!r} points for "
            f"sweep {name!r}, expected {len(spec.points)}"
        )
    if len(spec.points) == 0:
        return SweepResult(
            spec=spec, results=[], jobs=1, wall_clock_seconds=0.0
        )
    reply = client.wait_for(
        name, poll_interval=fleet.poll_interval, timeout=fleet.wait_timeout
    )
    results_by_index: dict[int, object] = {}
    for index, payload in reply.get("results", ()):
        if not isinstance(index, int) or not 0 <= index < len(spec.points):
            raise ProtocolError(
                f"fleet results carry index {index!r} outside the sweep"
            )
        results_by_index[index] = decode_result(payload, spec.points[index])
    results = ordered_results(len(spec.points), results_by_index)
    status = client.status(name)
    workers = [
        row
        for row in status.get("workers", ())
        if row.get("points_completed", 0) > 0
    ]
    elapsed = time.perf_counter() - start
    return SweepResult(
        spec=spec,
        results=results,
        # Workers that completed points for *any* sweep this daemon
        # lifetime; resumed runs may show 0 live workers — report 1 then,
        # mirroring the coordinator's max(1, workers) convention.
        jobs=max(1, len(workers)),
        wall_clock_seconds=elapsed,
    )
