"""Exception hierarchy for the T-Cache reproduction.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch the whole family with a single ``except`` clause while
still being able to distinguish the transactional outcomes that the paper's
protocol produces (aborts, detected inconsistencies) from genuine misuse of
the API (unknown keys, double commits, protocol violations).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TransactionError",
    "TransactionAborted",
    "InconsistencyDetected",
    "DeadlockDetected",
    "LockTimeout",
    "TwoPhaseCommitError",
    "ParticipantFailure",
    "KeyNotFound",
    "InvalidTransactionState",
    "SimulationError",
    "ProcessKilled",
    "ConfigurationError",
    "CoordinatorUnreachable",
    "DispatchError",
    "AuthenticationError",
    "JournalError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class TransactionError(ReproError):
    """Base class for transaction-related failures."""

    def __init__(self, txn_id: int, message: str) -> None:
        super().__init__(f"transaction {txn_id}: {message}")
        self.txn_id = txn_id


class TransactionAborted(TransactionError):
    """The transaction was aborted and its effects discarded.

    Raised both by the database (deadlock avoidance, explicit abort,
    participant failure) and by T-Cache when the ABORT / EVICT / RETRY
    strategies decide that a read-only transaction must not commit.
    """

    def __init__(self, txn_id: int, reason: str = "aborted") -> None:
        super().__init__(txn_id, reason)
        self.reason = reason


class InconsistencyDetected(TransactionAborted):
    """T-Cache detected a dependency violation (Eq. 1 or Eq. 2, §III-B).

    Carries enough structure for the strategies (and for tests) to know which
    object violated which expectation.
    """

    def __init__(
        self,
        txn_id: int,
        key: str,
        found_version: int,
        required_version: int,
        *,
        stale_read_is_current: bool,
    ) -> None:
        kind = "current read too old" if stale_read_is_current else "earlier read too old"
        super().__init__(
            txn_id,
            (
                f"inconsistency on {key!r}: found version {found_version}, "
                f"dependencies require >= {required_version} ({kind})"
            ),
        )
        self.key = key
        self.found_version = found_version
        self.required_version = required_version
        #: True when Eq. 2 fired (the object being read right now is stale);
        #: False when Eq. 1 fired (an object read earlier in the transaction
        #: turned out to be stale).
        self.stale_read_is_current = stale_read_is_current


class DeadlockDetected(TransactionError):
    """The lock manager refused a lock to break a deadlock (wound-wait)."""


class LockTimeout(TransactionError):
    """A lock request waited longer than the configured bound."""


class TwoPhaseCommitError(TransactionError):
    """The two-phase-commit protocol could not complete."""


class ParticipantFailure(ReproError):
    """A storage participant crashed or voted NO during 2PC."""

    def __init__(self, participant: str, message: str) -> None:
        super().__init__(f"participant {participant}: {message}")
        self.participant = participant


class KeyNotFound(ReproError):
    """The requested key does not exist in the store."""

    def __init__(self, key: str) -> None:
        super().__init__(f"key not found: {key!r}")
        self.key = key


class InvalidTransactionState(TransactionError):
    """An operation was attempted in a state that does not allow it."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation kernel."""


class ProcessKilled(ReproError):
    """Injected into a simulation process that is being killed."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with invalid parameters."""


class DispatchError(ReproError):
    """The cross-host dispatch layer could not complete an operation.

    Raised by the coordinator/worker machinery (:mod:`repro.dispatch`) for
    failures that are not mere worker deaths — those are tolerated and
    reassigned.  Coordinator side: a sweep whose points cannot travel as
    JSON, or results missing after serving stopped.  Worker side: no
    coordinator reachable within the connect timeout
    (:class:`CoordinatorUnreachable`) or a refused handshake.  A coordinator
    whose workers all die simply keeps serving the re-queued work until new
    workers arrive — that is a wait, not an error.
    """


class CoordinatorUnreachable(DispatchError):
    """No coordinator accepted the worker's connection before the timeout.

    The one :class:`DispatchError` that means "nothing is listening" rather
    than "something went wrong" — long-lived workers use it to decide they
    are idle and may exit cleanly.
    """


class ProtocolError(DispatchError):
    """A malformed frame arrived on a dispatch connection.

    Covers framing violations (bad length prefix, oversized or truncated
    frames), payloads that are not JSON objects, and messages whose type or
    fields do not fit the coordinator/worker protocol.
    """


class AuthenticationError(DispatchError):
    """A fleet peer failed the shared-secret HMAC handshake.

    Raised server-side when a connection presents no credential, a stale
    nonce, or a MAC computed with the wrong secret — always *before* the
    connection touches the fleet queue — and client-side when a daemon
    demands a challenge the client has no secret for (or rejects ours).
    """


class JournalError(DispatchError):
    """A fleet journal cannot be trusted.

    Raised when replaying an append-only sweep journal finds structural
    corruption: an unreadable header, a record for a point index outside
    the sweep, a *duplicate* point index (the append-only contract was
    violated), or a journal whose recorded spec fingerprint does not match
    the sweep being resumed.  A truncated *final* line — the one failure
    mode an interrupted append legitimately produces — is skipped with a
    warning instead, because everything before it is still intact.
    """
