"""T-Cache: cache serializability for edge transactions.

A full reproduction of *"Cache Serializability: Reducing Inconsistency in
Edge Transactions"* (Eyal, Birman, van Renesse — ICDCS 2015): the T-Cache
protocol, the transactional two-phase-commit backend it runs against, the
lossy invalidation pipeline, the serialization-graph consistency monitor,
and every workload and experiment from the paper's evaluation.

Quickstart::

    from repro import (
        CacheKind, ColumnConfig, PerfectClusterWorkload, Strategy, run_column,
    )

    workload = PerfectClusterWorkload(n_objects=1000, cluster_size=5)
    config = ColumnConfig(seed=7, duration=20.0, strategy=Strategy.EVICT)
    result = run_column(config, workload)
    print(f"inconsistency ratio: {result.inconsistency_ratio:.2%}")
    print(f"detection ratio:     {result.detection_ratio:.2%}")

Multi-edge topologies are first-class via the scenario API::

    from repro import EdgeSpec, ScenarioSpec, run_scenario

    spec = ScenarioSpec(name="two-regions", edges=[
        EdgeSpec(name="eu", workload=workload, invalidation_loss=0.05),
        EdgeSpec(name="ap", workload=workload, invalidation_loss=0.40),
    ])
    fleet = run_scenario(spec)
    print(f"fleet inconsistency: {fleet.fleet.inconsistency_ratio:.2%}")
    print(f"worst edge:          {fleet.edge('ap').inconsistency_ratio:.2%}")
"""

from repro.cache.base import CacheServer, CacheStats, CacheStorage
from repro.cache.ttl import TTLCache
from repro.core.deplist import UNBOUNDED, DependencyList
from repro.core.detector import InconsistencyReport, check_read
from repro.core.multiversion import MultiversionTCache
from repro.core.strategies import Strategy
from repro.core.tcache import TCache
from repro.db.database import Database, DatabaseConfig, TimingConfig
from repro.db.invalidation import InvalidationRecord
from repro.errors import (
    ConfigurationError,
    InconsistencyDetected,
    ReproError,
    TransactionAborted,
)
from repro.experiments.config import CacheKind, ColumnConfig
from repro.experiments.runner import ColumnResult, build_column, run_column
from repro.monitor.monitor import ConsistencyMonitor
from repro.protocols import (
    ProtocolSpec,
    get_protocol,
    protocol_for_edge,
    protocol_names,
    register_protocol,
)
from repro.scenario import (
    BackendAggregates,
    BackendSpec,
    EdgeSpec,
    FleetAggregates,
    ScenarioResult,
    ScenarioSpec,
    build_scenario,
    capacity_planning_sweep,
    flash_crowd_scenario,
    geo_skewed_scenario,
    heterogeneous_loss_fleet,
    hot_backend_overload,
    region_failure_drill,
    regional_backends_scenario,
    run_scenario,
)
from repro.monitor.sgt import SerializationGraphTester
from repro.sim.core import Simulator
from repro.sim.rng import BoundedPareto, RngStreams
from repro.types import DepEntry, ReadResult, VersionedValue
from repro.workloads.graphs import amazon_like_graph, orkut_like_graph, topology_stats
from repro.workloads.sampling import random_walk_sample
from repro.workloads.synthetic import (
    DriftingClusterWorkload,
    ParetoClusterWorkload,
    PerfectClusterWorkload,
    PhaseSwitchWorkload,
    UniformWorkload,
)
from repro.workloads.walker import RandomWalkWorkload

__version__ = "1.5.0"

__all__ = [
    "BackendAggregates",
    "BackendSpec",
    "BoundedPareto",
    "CacheKind",
    "CacheServer",
    "CacheStats",
    "CacheStorage",
    "ColumnConfig",
    "ColumnResult",
    "ConfigurationError",
    "ConsistencyMonitor",
    "Database",
    "DatabaseConfig",
    "DepEntry",
    "DependencyList",
    "DriftingClusterWorkload",
    "EdgeSpec",
    "FleetAggregates",
    "InconsistencyDetected",
    "InconsistencyReport",
    "InvalidationRecord",
    "MultiversionTCache",
    "ParetoClusterWorkload",
    "PerfectClusterWorkload",
    "PhaseSwitchWorkload",
    "ProtocolSpec",
    "RandomWalkWorkload",
    "ReadResult",
    "ReproError",
    "RngStreams",
    "ScenarioResult",
    "ScenarioSpec",
    "SerializationGraphTester",
    "Simulator",
    "Strategy",
    "TCache",
    "TTLCache",
    "TimingConfig",
    "TransactionAborted",
    "UNBOUNDED",
    "UniformWorkload",
    "VersionedValue",
    "amazon_like_graph",
    "build_column",
    "build_scenario",
    "capacity_planning_sweep",
    "check_read",
    "flash_crowd_scenario",
    "geo_skewed_scenario",
    "get_protocol",
    "heterogeneous_loss_fleet",
    "hot_backend_overload",
    "orkut_like_graph",
    "protocol_for_edge",
    "protocol_names",
    "region_failure_drill",
    "regional_backends_scenario",
    "random_walk_sample",
    "register_protocol",
    "run_column",
    "run_scenario",
    "topology_stats",
]
