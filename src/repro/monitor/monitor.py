"""The consistency monitor: the omniscient observer of Figure 2.

An experiment-only component. It taps every backend database's commit
stream and every cache's finished-transaction stream, classifies each
read-only transaction with a serialization-graph tester, and accumulates
both cumulative counts and a per-window time series. It never influences
the system under test.

Version namespaces
------------------
Versions are commit-sequence numbers *of one backend*: two backends both
allocate versions 1, 2, 3, ... and their orders are unrelated. The monitor
therefore keys every serialization-graph edge by ``(backend, version)``,
realised as one :class:`SerializationGraphTester` per backend namespace —
updates recorded under namespace ``b`` only ever meet read sets observed at
caches wired to ``b``. Single-backend wiring needs no namespace at all: the
default namespace is bound to the first backend that registers, so the
legacy ``add_commit_listener(monitor.record_update)`` hookup stays valid.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.monitor.sgt import SerializationGraphTester
from repro.monitor.stats import (
    ABORTED_NECESSARY,
    ABORTED_UNNECESSARY,
    CONSISTENT,
    INCONSISTENT,
    MonitorSummary,
    TimeSeries,
)
from repro.sim.core import Simulator
from repro.types import (
    CommittedTransaction,
    ReadOnlyTransactionRecord,
    TransactionOutcome,
)

__all__ = ["ConsistencyMonitor"]


class ConsistencyMonitor:
    """Collects transactions and rigorously detects inconsistencies.

    Wire it up with::

        monitor = ConsistencyMonitor(sim)
        database.add_commit_listener(monitor.record_update)
        cache.add_transaction_listener(monitor.record_read_only)

    For a routed backend tier, tag each stream with its backend namespace::

        for database in databases:
            monitor.bind_backend(database.namespace)
            database.add_commit_listener(
                lambda txn, _b=database.namespace: monitor.record_update(txn, backend=_b)
            )
        cache.add_transaction_listener(
            lambda rec: monitor.record_read_only(rec, source="edge0", backend="eu")
        )
    """

    def __init__(self, sim: Simulator, *, window: float = 1.0) -> None:
        self._sim = sim
        #: Tester of the default namespace (legacy single-backend wiring,
        #: and the first backend bound via :meth:`bind_backend`).
        self.tester = SerializationGraphTester()
        self._testers: dict[str | None, SerializationGraphTester] = {
            None: self.tester
        }
        self._default_namespace_bound = False
        self.summary = MonitorSummary()
        self.series = TimeSeries(window=window)
        #: Per-source (per-edge) views, keyed by the ``source`` tag passed to
        #: :meth:`record_read_only`. One shared monitor classifies the whole
        #: fleet while each edge keeps its own summary and time series.
        self.source_summaries: dict[str, MonitorSummary] = {}
        self.source_series: dict[str, TimeSeries] = {}
        #: Per-backend views, keyed by the ``backend`` namespace. These
        #: count read-only classifications only; update-commit counts per
        #: backend come from each backend's own ``DatabaseStats``.
        self.backend_summaries: dict[str, MonitorSummary] = {}
        self.backend_series: dict[str, TimeSeries] = {}
        #: Witnesses of committed-inconsistent transactions, for debugging
        #: and tests (bounded to avoid unbounded growth in long runs).
        self.inconsistency_witnesses: list[ReadOnlyTransactionRecord] = []
        self._witness_limit = 100

    # ------------------------------------------------------------------
    # Namespaces
    # ------------------------------------------------------------------

    def bind_backend(self, backend: str) -> SerializationGraphTester:
        """Declare a backend version namespace; returns its tester.

        The first backend bound shares the default namespace's tester, so
        streams recorded without a ``backend`` tag (the legacy wiring) and
        streams tagged with that backend's name land in the same graph.
        Every later backend gets its own independent tester.
        """
        tester = self._testers.get(backend)
        if tester is None:
            if not self._default_namespace_bound:
                tester = self.tester
                tester.namespace = backend
                self._default_namespace_bound = True
            else:
                tester = SerializationGraphTester(namespace=backend)
            self._testers[backend] = tester
        return tester

    def tester_for(self, backend: str | None) -> SerializationGraphTester:
        """The serialization-graph tester of one backend namespace.

        Unknown names raise instead of lazily creating a tester: a typo'd
        backend tag would otherwise classify reads against an empty history
        — everything trivially consistent — and silently zero that stream's
        inconsistency. Declare namespaces with :meth:`bind_backend` during
        wiring, as the scenario runner does.
        """
        if backend is None:
            return self.tester
        tester = self._testers.get(backend)
        if tester is None:
            raise SimulationError(
                f"unknown backend namespace {backend!r} (bound: "
                f"{self.backend_namespaces}); call bind_backend() during "
                "wiring before recording tagged streams"
            )
        return tester

    @property
    def backend_namespaces(self) -> list[str]:
        """Every named backend namespace, in bind order."""
        return [name for name in self._testers if name is not None]

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def record_update(
        self, txn: CommittedTransaction, backend: str | None = None
    ) -> None:
        """Add one committed update transaction to ``backend``'s history."""
        self.tester_for(backend).record_update(txn)
        self.summary.update_commits += 1
        tracer = self._sim._tracer
        if tracer is not None and tracer.wants("sgt"):
            tracer.metrics.count("sgt.update_commits")

    def record_read_only(
        self,
        record: ReadOnlyTransactionRecord,
        source: str | None = None,
        backend: str | None = None,
    ) -> None:
        """Classify one finished read-only transaction.

        ``source`` optionally names the edge the transaction ran against;
        tagged records additionally accumulate into that source's own
        summary and series (the scenario runner's per-edge views).
        ``backend`` names the version namespace the record's versions were
        observed in — the transaction is classified against that backend's
        history only, and accumulates into that backend's summary and
        series. The fleet-wide counts stay unified either way.
        """
        consistent = (not record.non_repeatable) and self.tester_for(
            backend
        ).is_consistent(record.reads)
        if record.non_repeatable:
            self.summary.non_repeatable += 1
        if record.outcome is TransactionOutcome.COMMITTED:
            label = CONSISTENT if consistent else INCONSISTENT
            if not consistent and len(self.inconsistency_witnesses) < self._witness_limit:
                self.inconsistency_witnesses.append(record)
        else:
            label = ABORTED_UNNECESSARY if consistent else ABORTED_NECESSARY
        self.summary.read_only.add(label)
        self.series.record(record.finish_time, label)
        tracer = self._sim._tracer
        if tracer is not None and tracer.wants("sgt"):
            tracer.emit(
                record.finish_time,
                "sgt",
                "check",
                {
                    "txn": record.txn_id,
                    "label": label,
                    "source": source,
                    "backend": backend,
                    "reads": len(record.reads),
                },
            )
            tracer.metrics.count(f"sgt.{label}")
        if source is not None:
            self._record_tagged(
                self.source_summaries, self.source_series, source, record, label
            )
        if backend is not None:
            self._record_tagged(
                self.backend_summaries,
                self.backend_series,
                backend,
                record,
                label,
            )

    def _record_tagged(
        self,
        summaries: dict[str, MonitorSummary],
        series: dict[str, TimeSeries],
        tag: str,
        record: ReadOnlyTransactionRecord,
        label: str,
    ) -> None:
        summary = summaries.get(tag)
        if summary is None:
            summary = summaries[tag] = MonitorSummary()
            series[tag] = TimeSeries(window=self.series.window)
        if record.non_repeatable:
            summary.non_repeatable += 1
        summary.read_only.add(label)
        series[tag].record(record.finish_time, label)

    # ------------------------------------------------------------------
    # Convenience accessors used by the experiments
    # ------------------------------------------------------------------

    @property
    def inconsistency_ratio(self) -> float:
        return self.summary.inconsistency_ratio

    @property
    def detection_ratio(self) -> float:
        return self.summary.detection_ratio

    @property
    def abort_ratio(self) -> float:
        return self.summary.abort_ratio
