"""The consistency monitor: the omniscient observer of Figure 2.

An experiment-only component. It taps the database's commit stream and every
cache's finished-transaction stream, classifies each read-only transaction
with the serialization-graph tester, and accumulates both cumulative counts
and a per-window time series. It never influences the system under test.
"""

from __future__ import annotations

from repro.monitor.sgt import SerializationGraphTester
from repro.monitor.stats import (
    ABORTED_NECESSARY,
    ABORTED_UNNECESSARY,
    CONSISTENT,
    INCONSISTENT,
    MonitorSummary,
    TimeSeries,
)
from repro.sim.core import Simulator
from repro.types import (
    CommittedTransaction,
    ReadOnlyTransactionRecord,
    TransactionOutcome,
)

__all__ = ["ConsistencyMonitor"]


class ConsistencyMonitor:
    """Collects transactions and rigorously detects inconsistencies.

    Wire it up with::

        monitor = ConsistencyMonitor(sim)
        database.add_commit_listener(monitor.record_update)
        cache.add_transaction_listener(monitor.record_read_only)
    """

    def __init__(self, sim: Simulator, *, window: float = 1.0) -> None:
        self._sim = sim
        self.tester = SerializationGraphTester()
        self.summary = MonitorSummary()
        self.series = TimeSeries(window=window)
        #: Per-source (per-edge) views, keyed by the ``source`` tag passed to
        #: :meth:`record_read_only`. One shared monitor classifies the whole
        #: fleet against one serialization graph while each edge keeps its
        #: own summary and time series.
        self.source_summaries: dict[str, MonitorSummary] = {}
        self.source_series: dict[str, TimeSeries] = {}
        #: Witnesses of committed-inconsistent transactions, for debugging
        #: and tests (bounded to avoid unbounded growth in long runs).
        self.inconsistency_witnesses: list[ReadOnlyTransactionRecord] = []
        self._witness_limit = 100

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def record_update(self, txn: CommittedTransaction) -> None:
        self.tester.record_update(txn)
        self.summary.update_commits += 1

    def record_read_only(
        self, record: ReadOnlyTransactionRecord, source: str | None = None
    ) -> None:
        """Classify one finished read-only transaction.

        ``source`` optionally names the edge the transaction ran against;
        tagged records additionally accumulate into that source's own
        summary and series (the scenario runner's per-edge views) while the
        fleet-wide classification stays unified.
        """
        consistent = (not record.non_repeatable) and self.tester.is_consistent(
            record.reads
        )
        if record.non_repeatable:
            self.summary.non_repeatable += 1
        if record.outcome is TransactionOutcome.COMMITTED:
            label = CONSISTENT if consistent else INCONSISTENT
            if not consistent and len(self.inconsistency_witnesses) < self._witness_limit:
                self.inconsistency_witnesses.append(record)
        else:
            label = ABORTED_UNNECESSARY if consistent else ABORTED_NECESSARY
        self.summary.read_only.add(label)
        self.series.record(record.finish_time, label)
        if source is not None:
            summary = self.source_summaries.get(source)
            if summary is None:
                summary = self.source_summaries[source] = MonitorSummary()
                self.source_series[source] = TimeSeries(window=self.series.window)
            if record.non_repeatable:
                summary.non_repeatable += 1
            summary.read_only.add(label)
            self.source_series[source].record(record.finish_time, label)

    # ------------------------------------------------------------------
    # Convenience accessors used by the experiments
    # ------------------------------------------------------------------

    @property
    def inconsistency_ratio(self) -> float:
        return self.summary.inconsistency_ratio

    @property
    def detection_ratio(self) -> float:
        return self.summary.detection_ratio

    @property
    def abort_ratio(self) -> float:
        return self.summary.abort_ratio
