"""The experiment-only consistency monitor (Fig. 2).

"Both the database and the cache report all completed transactions to a
consistency monitor ... It performs full serialization graph testing [5] and
calculates the rate of inconsistent transactions that committed and the rate
of consistent transactions that were unnecessarily aborted."

* :mod:`repro.monitor.sgt` — the serialization-graph tester: conflict DAG
  over committed update transactions, cycle search per read-only
  transaction.
* :mod:`repro.monitor.stats` — windowed time series and summary ratios.
* :mod:`repro.monitor.monitor` — the observer wiring both together.
"""

from repro.monitor.analysis import StalenessProbe, StalenessReport
from repro.monitor.monitor import ConsistencyMonitor
from repro.monitor.sgt import SerializationGraphTester
from repro.monitor.stats import MonitorSummary, TimeSeries

__all__ = [
    "ConsistencyMonitor",
    "MonitorSummary",
    "SerializationGraphTester",
    "StalenessProbe",
    "StalenessReport",
    "TimeSeries",
]
