"""Windowed time series and summary ratios for the experiment reports.

The figures need two views of the monitor's classifications:

* cumulative ratios over a whole run (Figs. 3, 6, 7, 8) — provided by
  :class:`MonitorSummary`;
* per-second (or per-window) rates (Figs. 4, 5) — provided by
  :class:`TimeSeries`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["TimeSeries", "MonitorSummary", "ClassCounts"]

#: Classification labels used across the monitor and the figures.
CONSISTENT = "consistent"
INCONSISTENT = "inconsistent"
ABORTED_NECESSARY = "aborted_necessary"
ABORTED_UNNECESSARY = "aborted_unnecessary"

CLASSES = (CONSISTENT, INCONSISTENT, ABORTED_NECESSARY, ABORTED_UNNECESSARY)


@dataclass(slots=True)
class ClassCounts:
    """Counts of read-only transactions by monitor classification."""

    consistent: int = 0
    inconsistent: int = 0
    aborted_necessary: int = 0
    aborted_unnecessary: int = 0

    @property
    def committed(self) -> int:
        return self.consistent + self.inconsistent

    @property
    def aborted(self) -> int:
        return self.aborted_necessary + self.aborted_unnecessary

    @property
    def total(self) -> int:
        return self.committed + self.aborted

    def add(self, label: str) -> None:
        # Dispatch on identity-comparable interned labels instead of
        # reflective get/setattr: this runs twice per classified transaction.
        if label == "consistent":
            self.consistent += 1
        elif label == "inconsistent":
            self.inconsistent += 1
        elif label == "aborted_necessary":
            self.aborted_necessary += 1
        elif label == "aborted_unnecessary":
            self.aborted_unnecessary += 1
        else:
            setattr(self, label, getattr(self, label) + 1)

    @property
    def inconsistency_ratio(self) -> float:
        """Inconsistent commits over all commits (Figs. 5, 7)."""
        return self.inconsistent / self.committed if self.committed else 0.0

    @property
    def abort_ratio(self) -> float:
        return self.aborted / self.total if self.total else 0.0

    @property
    def detection_ratio(self) -> float:
        """Detected inconsistencies over potential inconsistencies (Fig. 3).

        A *potential* inconsistency is a transaction that either committed
        inconsistently (missed) or was aborted while genuinely inconsistent
        (detected).
        """
        potential = self.aborted_necessary + self.inconsistent
        return self.aborted_necessary / potential if potential else 0.0

    def as_dict(self) -> dict[str, int]:
        return {label: getattr(self, label) for label in CLASSES}


class TimeSeries:
    """Per-window classification counts keyed by ``int(time / window)``."""

    def __init__(self, window: float = 1.0) -> None:
        self.window = window
        self._buckets: dict[int, ClassCounts] = defaultdict(ClassCounts)

    def record(self, time: float, label: str) -> None:
        self._buckets[int(time / self.window)].add(label)

    def bucket(self, index: int) -> ClassCounts:
        return self._buckets.get(index, ClassCounts())

    def buckets(self) -> list[tuple[float, ClassCounts]]:
        """Sorted ``(window start time, counts)`` pairs."""
        return [
            (index * self.window, self._buckets[index])
            for index in sorted(self._buckets)
        ]

    def rates(self) -> list[dict[str, float]]:
        """Per-window transaction rates in txn/sec, one row per window."""
        rows = []
        for start, counts in self.buckets():
            row: dict[str, float] = {"time": start}
            for label in CLASSES:
                row[label] = getattr(counts, label) / self.window
            row["inconsistency_ratio"] = counts.inconsistency_ratio
            rows.append(row)
        return rows

    def __len__(self) -> int:
        return len(self._buckets)


@dataclass(slots=True)
class MonitorSummary:
    """Cumulative view handed to the experiment harness."""

    read_only: ClassCounts = field(default_factory=ClassCounts)
    update_commits: int = 0
    #: Read-only transactions flagged non-repeatable by the cache.
    non_repeatable: int = 0

    @property
    def inconsistency_ratio(self) -> float:
        return self.read_only.inconsistency_ratio

    @property
    def detection_ratio(self) -> float:
        return self.read_only.detection_ratio

    @property
    def abort_ratio(self) -> float:
        return self.read_only.abort_ratio
