"""Serialization graph testing for read-only edge transactions.

Theory
------
The backend uses strict two-phase locking and assigns versions from a global
commit-sequence counter, so every conflict edge between update transactions
(write-write, write-read, read-write on a common key) points from a lower
version to a higher version: the conflict graph of update transactions is a
DAG and the version order is a valid serialization. (This is asserted, not
assumed: :meth:`SerializationGraphTester.verify_update_dag` recomputes the
edge directions, and the database test suite calls it.)

A read-only transaction ``T`` that observed version ``v_i`` of object ``o_i``
adds, per standard serialization-graph construction:

* a WR edge ``W_i -> T`` from the writer ``W_i`` of each version read, and
* an RW edge ``T -> N_j`` to the *next* writer ``N_j`` of each object read
  (the earliest update transaction that overwrote the version ``T`` saw).

``T`` serializes with the update history iff the combined graph has no cycle
through ``T``, which — since update transactions alone form a DAG — is
exactly the existence of a path ``N_j ->* W_i`` for some pair ``(j, i)``
(including the degenerate path ``N_j = W_i``). The tester materialises
version chains and reader indexes and answers that reachability question
with a breadth-first search that only expands transactions whose version is
at most ``max_i version(W_i)`` — every conflict edge increases the version,
so nothing beyond that bound can reach a writer.

Because conflict edges only ever point towards *later* versions, a read set
that is consistent now can never become inconsistent as more update
transactions commit; the monitor may therefore classify each read-only
transaction once, at completion time.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Iterable, Mapping

from repro.errors import SimulationError
from repro.types import CommittedTransaction, Key, TxnId, Version

__all__ = ["SerializationGraphTester"]


class SerializationGraphTester:
    """Exact consistency oracle over one backend's committed update history.

    Versions (and the transaction ids that double as them) are only ordered
    *within* a backend database's commit sequence, so one tester holds one
    backend's history: the monitor keeps a tester per backend namespace and
    routes each stream to its own graph — the ``(backend, version)`` keying
    of serialization-graph edges. ``namespace`` optionally names which
    backend this tester serves, for diagnostics.
    """

    def __init__(self, namespace: str | None = None) -> None:
        self.namespace = namespace
        self._txns: dict[TxnId, CommittedTransaction] = {}
        #: Per key: sorted list of versions installed (ascending).
        self._chains: dict[Key, list[Version]] = {}
        #: Update transactions that *read* (key, version), for WR edges
        #: between update transactions.
        self._readers: dict[tuple[Key, Version], list[TxnId]] = {}
        self.update_count = 0
        self.checks = 0
        #: Total BFS node expansions, for overhead reporting.
        self.expansions = 0

    # ------------------------------------------------------------------
    # History construction
    # ------------------------------------------------------------------

    def record_update(self, txn: CommittedTransaction) -> None:
        """Add a committed update transaction to the history."""
        if txn.txn_id in self._txns:
            where = f" in namespace {self.namespace!r}" if self.namespace else ""
            raise SimulationError(
                f"update transaction {txn.txn_id} recorded twice{where}"
            )
        self._txns[txn.txn_id] = txn
        self.update_count += 1
        for key, version in txn.writes.items():
            if version != txn.txn_id:
                raise SimulationError(
                    f"write version {version} differs from txn version {txn.txn_id}"
                )
            insort(self._chains.setdefault(key, []), version)
        for key, version in txn.reads.items():
            self._readers.setdefault((key, version), []).append(txn.txn_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def writer_of(self, key: Key, version: Version) -> TxnId | None:
        """The update transaction that installed ``(key, version)``.

        Version 0 entries come from the initial load and have no writer.
        """
        if version == 0:
            return None
        txn = self._txns.get(version)
        if txn is None or key not in txn.writes:
            raise SimulationError(f"no recorded writer for {key!r} @ {version}")
        return version

    def next_writer(self, key: Key, version: Version) -> TxnId | None:
        """The earliest transaction that overwrote ``(key, version)``."""
        chain = self._chains.get(key)
        if not chain:
            return None
        index = bisect_right(chain, version)
        if index == len(chain):
            return None
        return chain[index]

    def is_consistent(self, reads: Mapping[Key, Version]) -> bool:
        """Whether a read-only transaction observing ``reads`` serializes.

        ``reads`` maps each key to the version observed. Empty and
        single-read transactions are trivially consistent (per-object reads
        always see some committed version).
        """
        self.checks += 1
        if len(reads) <= 1:
            return True

        writers: set[TxnId] = set()
        for key, version in reads.items():
            writer = self.writer_of(key, version)
            if writer is not None:
                writers.add(writer)
        starts: set[TxnId] = set()
        for key, version in reads.items():
            overwriter = self.next_writer(key, version)
            if overwriter is not None:
                starts.add(overwriter)
        if not writers or not starts:
            return True
        bound = max(writers)

        # BFS over the update-transaction conflict DAG, versions ascending.
        frontier = [txn for txn in starts if txn <= bound]
        visited: set[TxnId] = set(frontier)
        while frontier:
            node = frontier.pop()
            if node in writers:
                return False
            self.expansions += 1
            for successor in self._successors(node):
                if successor <= bound and successor not in visited:
                    visited.add(successor)
                    frontier.append(successor)
        return True

    def explain_inconsistency(
        self, reads: Mapping[Key, Version]
    ) -> tuple[Key, Key] | None:
        """A witness pair (stale key, fresh key) when ``reads`` is
        inconsistent, for diagnostics and tests; None when consistent.
        """
        for stale_key, stale_version in reads.items():
            start = self.next_writer(stale_key, stale_version)
            if start is None:
                continue
            for fresh_key, fresh_version in reads.items():
                writer = self.writer_of(fresh_key, fresh_version)
                if writer is None:
                    continue
                if self._reaches(start, writer):
                    return (stale_key, fresh_key)
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _successors(self, txn_id: TxnId) -> Iterable[TxnId]:
        """Outgoing conflict edges of an update transaction."""
        txn = self._txns.get(txn_id)
        if txn is None:
            return
        for key, version in txn.writes.items():
            overwriter = self.next_writer(key, version)
            if overwriter is not None:
                yield overwriter  # WW
            for reader in self._readers.get((key, version), ()):
                if reader != txn_id:
                    yield reader  # WR
        for key, version in txn.reads.items():
            overwriter = self.next_writer(key, version)
            if overwriter is not None and overwriter != txn_id:
                yield overwriter  # RW

    def _reaches(self, start: TxnId, target: TxnId) -> bool:
        if start == target:
            return True
        frontier = [start]
        visited = {start}
        while frontier:
            node = frontier.pop()
            for successor in self._successors(node):
                if successor == target:
                    return True
                if successor < target and successor not in visited:
                    visited.add(successor)
                    frontier.append(successor)
        return False

    def verify_update_dag(self) -> bool:
        """Assert every conflict edge increases the version (DAG witness)."""
        for txn_id in self._txns:
            for successor in self._successors(txn_id):
                if successor <= txn_id:
                    return False
        return True
