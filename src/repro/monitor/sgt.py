"""Serialization graph testing for read-only edge transactions.

Theory
------
The backend uses strict two-phase locking and assigns versions from a global
commit-sequence counter, so every conflict edge between update transactions
(write-write, write-read, read-write on a common key) points from a lower
version to a higher version: the conflict graph of update transactions is a
DAG and the version order is a valid serialization. (This is asserted, not
assumed: :meth:`SerializationGraphTester.verify_update_dag` recomputes the
edge directions, and the database test suite calls it.)

A read-only transaction ``T`` that observed version ``v_i`` of object ``o_i``
adds, per standard serialization-graph construction:

* a WR edge ``W_i -> T`` from the writer ``W_i`` of each version read, and
* an RW edge ``T -> N_j`` to the *next* writer ``N_j`` of each object read
  (the earliest update transaction that overwrote the version ``T`` saw).

``T`` serializes with the update history iff the combined graph has no cycle
through ``T``, which — since update transactions alone form a DAG — is
exactly the existence of a path ``N_j ->* W_i`` for some pair ``(j, i)``
(including the degenerate path ``N_j = W_i``). The tester answers that
reachability question with a breadth-first search that only expands
transactions whose version is at most ``max_i version(W_i)`` — every
conflict edge increases the version, so nothing beyond that bound can reach
a writer.

Incremental adjacency
---------------------
Earlier revisions re-derived a transaction's outgoing conflict edges on
every BFS expansion (per-key ``bisect`` over the version chains plus reader
lookups), which made each check pay ``O(edges x log chain)`` in dictionary
and bisect traffic. The tester now maintains the adjacency **incrementally**
in :meth:`record_update`, the same precomputed-conflict idea Nagar &
Jagannathan's violation detector uses:

* recording a write of key ``k`` at version ``v`` *back-patches* the
  transactions whose next-writer on ``k`` becomes ``v`` — the writer of the
  version directly below ``v`` gains its WW edge, and every recorded reader
  of a version in ``[below, v)`` gains its RW edge;
* recording a read of ``(k, u)`` adds the RW edge to the current next
  writer (if any — otherwise the future writer back-patches it) and the WR
  edge from ``u``'s writer.

``is_consistent`` is then a walk over prebuilt adjacency lists — no
per-expansion derivation — and the per-check cost stays O(1) in the history
size (§V-B2), with the same ``expansions`` accounting. Out-of-order version
arrival (a lower version recorded after a higher one) is supported: the
affected edges are re-pointed when the chain insertion lands mid-chain.

Because conflict edges only ever point towards *later* versions, a read set
that is consistent now can never become inconsistent as more update
transactions commit; the monitor may therefore classify each read-only
transaction once, at completion time.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Mapping

from repro.errors import SimulationError
from repro.types import CommittedTransaction, Key, TxnId, Version

__all__ = ["SerializationGraphTester"]


class SerializationGraphTester:
    """Exact consistency oracle over one backend's committed update history.

    Versions (and the transaction ids that double as them) are only ordered
    *within* a backend database's commit sequence, so one tester holds one
    backend's history: the monitor keeps a tester per backend namespace and
    routes each stream to its own graph — the ``(backend, version)`` keying
    of serialization-graph edges. ``namespace`` optionally names which
    backend this tester serves, for diagnostics.
    """

    def __init__(self, namespace: str | None = None) -> None:
        self.namespace = namespace
        self._txns: dict[TxnId, CommittedTransaction] = {}
        #: Per key: sorted list of versions installed (ascending).
        self._chains: dict[Key, list[Version]] = {}
        #: Update transactions that *read* (key, version), for WR edges
        #: between update transactions.
        self._readers: dict[tuple[Key, Version], list[TxnId]] = {}
        #: Per key: sorted distinct versions with at least one recorded
        #: reader — the index the write-time RW back-patch walks.
        self._read_versions: dict[Key, list[Version]] = {}
        #: Outgoing conflict edges (WW/WR/RW) per update transaction,
        #: maintained incrementally. Entries may repeat when two conflicts
        #: share endpoints (one per conflicting key) — the BFS dedupes via
        #: its visited set, exactly as the derive-on-the-fly version did.
        self._adjacency: dict[TxnId, list[TxnId]] = {}
        self.update_count = 0
        self.checks = 0
        #: Total BFS node expansions, for overhead reporting.
        self.expansions = 0

    # ------------------------------------------------------------------
    # History construction
    # ------------------------------------------------------------------

    def record_update(self, txn: CommittedTransaction) -> None:
        """Add a committed update transaction to the history.

        Amortised cost is O(reads + writes) dictionary work per
        transaction; the back-patches touch only the readers whose
        next-writer actually changes.
        """
        version = txn.txn_id
        if version in self._txns:
            where = f" in namespace {self.namespace!r}" if self.namespace else ""
            raise SimulationError(
                f"update transaction {version} recorded twice{where}"
            )
        self._txns[version] = txn
        self.update_count += 1
        adjacency = self._adjacency
        edges = adjacency.setdefault(version, [])

        # Writes first, so the RW edges of this transaction's own reads see
        # its installed versions (self-overwrites stay self-edge-free, as in
        # the derived construction).
        for key, written in txn.writes.items():
            if written != version:
                raise SimulationError(
                    f"write version {written} differs from txn version {version}"
                )
            chain = self._chains.get(key)
            if chain is None:
                chain = self._chains[key] = []
            if not chain or written > chain[-1]:
                index = len(chain)
                chain.append(written)
            else:  # out-of-order arrival: splice into the middle
                index = bisect_right(chain, written)
                chain.insert(index, written)
            below = chain[index - 1] if index else 0
            above = chain[index + 1] if index + 1 < len(chain) else None

            if above is not None:
                # This version was (already) overwritten: WW edge out.
                edges.append(above)
            if below:
                # The writer below used to point at `above` (or nowhere);
                # its next writer is now this transaction.
                below_edges = adjacency[below]
                if above is not None:
                    below_edges.remove(above)
                below_edges.append(version)
            # Readers of any version in [below, written) likewise re-point.
            read_versions = self._read_versions.get(key)
            if read_versions:
                start = bisect_left(read_versions, below)
                stop = bisect_left(read_versions, written)
                for observed in read_versions[start:stop]:
                    for reader in self._readers[(key, observed)]:
                        reader_edges = adjacency[reader]
                        if above is not None and above != reader:
                            reader_edges.remove(above)
                        reader_edges.append(version)
            # WR edges towards readers that recorded this exact version
            # before its writer arrived (out-of-order only).
            for reader in self._readers.get((key, written), ()):
                if reader != version:
                    edges.append(reader)

        for key, observed in txn.reads.items():
            self._readers.setdefault((key, observed), []).append(version)
            read_versions = self._read_versions.setdefault(key, [])
            index = bisect_left(read_versions, observed)
            if index == len(read_versions) or read_versions[index] != observed:
                read_versions.insert(index, observed)
            # RW: edge to the current next writer of the version read.
            chain = self._chains.get(key)
            if chain:
                index = bisect_right(chain, observed)
                if index < len(chain):
                    overwriter = chain[index]
                    if overwriter != version:
                        edges.append(overwriter)
            # WR: the writer of the version read gains an edge to this txn.
            if observed and observed != version:
                writer_txn = self._txns.get(observed)
                if writer_txn is not None and key in writer_txn.writes:
                    adjacency[observed].append(version)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def writer_of(self, key: Key, version: Version) -> TxnId | None:
        """The update transaction that installed ``(key, version)``.

        Version 0 entries come from the initial load and have no writer.
        """
        if version == 0:
            return None
        txn = self._txns.get(version)
        if txn is None or key not in txn.writes:
            raise SimulationError(f"no recorded writer for {key!r} @ {version}")
        return version

    def next_writer(self, key: Key, version: Version) -> TxnId | None:
        """The earliest transaction that overwrote ``(key, version)``."""
        chain = self._chains.get(key)
        if not chain:
            return None
        index = bisect_right(chain, version)
        if index == len(chain):
            return None
        return chain[index]

    def is_consistent(self, reads: Mapping[Key, Version]) -> bool:
        """Whether a read-only transaction observing ``reads`` serializes.

        ``reads`` maps each key to the version observed. Empty and
        single-read transactions are trivially consistent (per-object reads
        always see some committed version).
        """
        self.checks += 1
        if len(reads) <= 1:
            return True

        writers: set[TxnId] = set()
        for key, version in reads.items():
            writer = self.writer_of(key, version)
            if writer is not None:
                writers.add(writer)
        starts: set[TxnId] = set()
        for key, version in reads.items():
            overwriter = self.next_writer(key, version)
            if overwriter is not None:
                starts.add(overwriter)
        if not writers or not starts:
            return True
        bound = max(writers)

        # BFS over the prebuilt conflict adjacency, versions ascending.
        frontier = [txn for txn in starts if txn <= bound]
        visited: set[TxnId] = set(frontier)
        adjacency = self._adjacency
        expansions = 0
        try:
            while frontier:
                node = frontier.pop()
                if node in writers:
                    return False
                expansions += 1
                for successor in adjacency.get(node, ()):
                    if successor <= bound and successor not in visited:
                        visited.add(successor)
                        frontier.append(successor)
            return True
        finally:
            self.expansions += expansions

    def explain_inconsistency(
        self, reads: Mapping[Key, Version]
    ) -> tuple[Key, Key] | None:
        """A witness pair (stale key, fresh key) when ``reads`` is
        inconsistent, for diagnostics and tests; None when consistent.

        One bounded BFS per distinct start (memoised across stale keys)
        instead of one per (stale, fresh) pair: conflict edges ascend in
        version, so a single reachable-set walk capped at the largest writer
        version answers every fresh-key probe for that start. Keeps the
        first-witness-in-read-order contract of the pairwise original.
        """
        if not reads:
            return None
        writer_keys: list[tuple[TxnId, Key]] = []
        bound = 0
        for fresh_key, fresh_version in reads.items():
            writer = self.writer_of(fresh_key, fresh_version)
            if writer is not None:
                writer_keys.append((writer, fresh_key))
                if writer > bound:
                    bound = writer
        if not writer_keys:
            return None

        adjacency = self._adjacency
        reachable_from: dict[TxnId, set[TxnId]] = {}
        for stale_key, stale_version in reads.items():
            start = self.next_writer(stale_key, stale_version)
            if start is None:
                continue
            reached = reachable_from.get(start)
            if reached is None:
                reached = {start}
                frontier = [start] if start <= bound else []
                while frontier:
                    node = frontier.pop()
                    for successor in adjacency.get(node, ()):
                        if successor <= bound and successor not in reached:
                            reached.add(successor)
                            frontier.append(successor)
                reachable_from[start] = reached
            for writer, fresh_key in writer_keys:
                if writer in reached:
                    return (stale_key, fresh_key)
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _successors(self, txn_id: TxnId) -> Iterable[TxnId]:
        """Outgoing conflict edges of an update transaction.

        The prebuilt adjacency list (possibly with benign duplicates); the
        multiset union over keys of WW/WR/RW conflicts, exactly what the
        old per-query derivation yielded.
        """
        return self._adjacency.get(txn_id, ())

    def _reaches(self, start: TxnId, target: TxnId) -> bool:
        """Reachability in the conflict DAG, pruned at ``target``.

        Every conflict edge ascends in version, so nodes above ``target``
        can never lead back to it.
        """
        if start == target:
            return True
        frontier = [start] if start < target else []
        visited = {start}
        adjacency = self._adjacency
        while frontier:
            node = frontier.pop()
            for successor in adjacency.get(node, ()):
                if successor == target:
                    return True
                if successor < target and successor not in visited:
                    visited.add(successor)
                    frontier.append(successor)
        return False

    def verify_update_dag(self) -> bool:
        """Assert every conflict edge increases the version (DAG witness)."""
        for txn_id in self._txns:
            for successor in self._successors(txn_id):
                if successor <= txn_id:
                    return False
        return True
