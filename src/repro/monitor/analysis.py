"""Deeper post-hoc analysis of a column run.

The headline metrics (inconsistency ratio, detection ratio) hide structure
that matters when tuning T-Cache in practice:

* **staleness depth** — when a stale value is read, how many versions behind
  the database was it? Shallow staleness (1 version) is what short
  dependency lists catch; deep tails point at cold objects with lost
  invalidations.
* **per-key attribution** — which objects cause the inconsistencies? A
  heavy-tailed attribution suggests per-object dependency-list bounds or
  pinning (§VII) will pay off.
* **abort evidence** — which equation fired, and how far apart were the
  observed and required versions?

The :class:`StalenessProbe` taps the same streams the consistency monitor
uses and costs O(1) per read.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.types import CommittedTransaction, Key, ReadOnlyTransactionRecord, Version

__all__ = ["StalenessProbe", "StalenessReport"]


@dataclass(slots=True)
class StalenessReport:
    """Summary of a finished run, produced by :class:`StalenessProbe`."""

    reads_observed: int
    stale_reads: int
    #: Histogram: versions-behind -> count (1 = one missed update).
    depth_histogram: dict[int, int]
    #: The keys most often read stale, with counts, descending.
    worst_keys: list[tuple[Key, int]]

    @property
    def stale_ratio(self) -> float:
        return self.stale_reads / self.reads_observed if self.reads_observed else 0.0

    @property
    def mean_depth(self) -> float:
        total = sum(depth * count for depth, count in self.depth_histogram.items())
        return total / self.stale_reads if self.stale_reads else 0.0

    @property
    def shallow_fraction(self) -> float:
        """Fraction of stale reads exactly one version behind — the regime
        where a single dependency entry suffices for detection."""
        if not self.stale_reads:
            return 0.0
        return self.depth_histogram.get(1, 0) / self.stale_reads


class StalenessProbe:
    """Tracks how far behind the database the cache's served reads are.

    Wire alongside the monitor::

        probe = StalenessProbe()
        database.add_commit_listener(probe.record_update)
        cache.add_transaction_listener(probe.record_read_only)
    """

    def __init__(self, *, worst_keys: int = 10) -> None:
        self._version_index: dict[Key, list[Version]] = {}
        self._current: dict[Key, Version] = {}
        self._stale_by_key: Counter = Counter()
        self._depths: Counter = Counter()
        self._reads = 0
        self._stale = 0
        self._worst_keys = worst_keys

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def record_update(self, txn: CommittedTransaction) -> None:
        for key, version in txn.writes.items():
            self._version_index.setdefault(key, []).append(version)
            self._current[key] = version

    def record_read_only(self, record: ReadOnlyTransactionRecord) -> None:
        for key, version in record.reads.items():
            self._reads += 1
            current = self._current.get(key)
            if current is None or version >= current:
                continue
            self._stale += 1
            self._stale_by_key[key] += 1
            self._depths[self._depth_of(key, version, current)] += 1

    def _depth_of(self, key: Key, seen: Version, current: Version) -> int:
        """Number of committed versions between ``seen`` and ``current``."""
        from bisect import bisect_right

        chain = self._version_index.get(key, [])
        return bisect_right(chain, current) - bisect_right(chain, seen)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self) -> StalenessReport:
        return StalenessReport(
            reads_observed=self._reads,
            stale_reads=self._stale,
            depth_histogram=dict(sorted(self._depths.items())),
            worst_keys=self._stale_by_key.most_common(self._worst_keys),
        )
