#!/usr/bin/env python
"""The protocol zoo: race consistency protocols, then register your own.

Part one runs the ``protocol-race`` experiment at demo scale: every
default competitor — the paper's T-Cache detector, CausalMesh-style
session floors, TransEdge-style signed read proofs, and wound-wait lock
coherence — over the same three library fleets, ranked on inconsistency
rate vs a read-latency proxy vs backend load. The ranking *is* the
paper's argument, now measured instead of asserted: locking buys zero
inconsistency with a backend round trip per read; the optimistic designs
trade a little inconsistency for an order of magnitude less latency.

Part two registers a brand-new protocol in ~20 lines — a "pessimistic
TTL" that serves only entries younger than a hard staleness bound — and
immediately runs it through a scenario, no harness changes required.

Run:  python examples/protocol_zoo.py
"""

from repro import (
    EdgeSpec,
    PerfectClusterWorkload,
    ProtocolSpec,
    ScenarioSpec,
    protocol_names,
    register_protocol,
    run_scenario,
)
from repro.cache.base import CacheServer
from repro.experiments import protocol_race
from repro.experiments.report import print_table


def run_the_race() -> None:
    print(f"registered protocols: {', '.join(protocol_names())}\n")
    rows, ranking, _payload = protocol_race.run(duration=6.0, jobs=2)
    print_table(
        rows,
        title="per (scenario, protocol) point",
    )
    print()
    print_table(
        ranking,
        title="ranking: fewest inconsistencies, then cheapest reads",
    )
    print()


class BoundedStalenessCache(CacheServer):
    """Serve a cached entry only while it is younger than ``bound``."""

    def __init__(self, sim, backend, *, bound, name):
        super().__init__(sim, backend, name=name)
        self.bound = bound
        self._fetched_at = {}

    def _fetch(self, key):
        entry = super()._fetch(key)
        self._fetched_at[key] = self.sim.now
        return entry

    def _check_read(self, txn_id, record, entry):
        if self.sim.now - self._fetched_at.get(record.key, 0.0) > self.bound:
            self.stats.retries += 1
            entry = self._fetch(record.key)
        return entry, False


def register_and_run_bounded_staleness() -> None:
    register_protocol(
        ProtocolSpec(
            name="bounded-staleness",
            family="example",
            description="refetch anything older than 100ms",
            build_cache=lambda sim, db, edge, service: BoundedStalenessCache(
                sim, db, bound=0.1, name=edge.name
            ),
        )
    )
    workload = PerfectClusterWorkload(n_objects=500, cluster_size=5)
    spec = ScenarioSpec(
        name="bounded-demo",
        duration=10.0,
        warmup=2.0,
        edges=[
            EdgeSpec(name="paper", workload=workload),
            EdgeSpec(
                name="bounded", workload=workload, protocol="bounded-staleness"
            ),
        ],
    )
    result = run_scenario(spec)
    rows = []
    for edge_spec in spec.edges:
        edge = result.edge(edge_spec.name)
        rows.append(
            {
                "edge": edge_spec.name,
                "protocol": edge_spec.protocol or "tcache-detector",
                "inconsistency": f"{edge.inconsistency_ratio:.2%}",
                "hit_ratio": f"{edge.hit_ratio:.1%}",
                "db_reads_per_s": round(edge.db_access_rate, 1),
            }
        )
    print_table(
        rows,
        title="a just-registered protocol racing the paper's detector",
    )


def main() -> None:
    run_the_race()
    register_and_run_bounded_staleness()
    print()
    print("Any ProtocolSpec races in every scenario, sweep and fleet run —")
    print("see the 'Protocol zoo' section of the README.")


if __name__ == "__main__":
    main()
