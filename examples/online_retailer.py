#!/usr/bin/env python
"""Online retailer scenario: the toy train and its tracks (§II).

"Consider a buyer at an online site who looks for a toy train with its
matching tracks just as the vendor is adding them to the database. The
client may see only the train in stock but not the tracks because the
product insertion transaction would often be broken into two or more atomic
but independent sub-transactions."

Part 1 replays that anomaly step by step against a consistency-unaware
cache, then shows T-Cache detecting it from the dependency lists alone.
Part 2 runs the paper's Amazon-workload experiment (random walks over a
co-purchase-like topology) and compares dependency-list sizes.

Run:  python examples/online_retailer.py
"""

from repro import (
    CacheServer,
    ColumnConfig,
    Database,
    DatabaseConfig,
    InconsistencyDetected,
    Simulator,
    Strategy,
    TCache,
    TimingConfig,
    run_column,
)
from repro.experiments.realistic import realistic_workload
from repro.experiments.report import format_table


def part1_anomaly() -> None:
    print("=" * 72)
    print("Part 1: the toy-train anomaly, step by step")
    print("=" * 72)

    sim = Simulator()
    db = Database(sim, DatabaseConfig(deplist_max=5, timing=TimingConfig(0, 0, 0, 0)))
    db.load({"stock:train": 0, "stock:tracks": 0})

    plain = CacheServer(sim, db, name="plain-cache")
    tcache = TCache(sim, db, strategy=Strategy.RETRY, name="t-cache")

    # Both caches warm up on the initial (version 0) stock.
    plain.read(1, "stock:train", last_op=True)
    tcache.read(1, "stock:train", last_op=True)

    # The vendor restocks train AND tracks in one transaction...
    process = db.execute_update(
        read_keys=["stock:train", "stock:tracks"],
        writes={"stock:train": 25, "stock:tracks": 100},
    )
    sim.run()
    assert process.ok
    print("vendor committed: train=25, tracks=100 (one transaction)")
    print("invalidation for 'stock:train' was LOST (the 20% pathology)\n")
    # ...but the caches only hear about the tracks.
    from repro.db.invalidation import InvalidationRecord

    record = InvalidationRecord(
        key="stock:tracks", version=process.value.txn_id,
        txn_id=process.value.txn_id, commit_time=sim.now,
    )
    plain.handle_invalidation(record)
    tcache.handle_invalidation(record)

    # A buyer checks both items through the PLAIN cache.
    tracks = plain.read(2, "stock:tracks")
    train = plain.read(2, "stock:train", last_op=True)
    print(f"plain cache:  tracks={tracks.value} (fresh), train={train.value} (STALE)")
    print("  -> the buyer sees new tracks but the old train count: torn read\n")

    # The same purchase through T-CACHE (RETRY strategy).
    tracks = tcache.read(2, "stock:tracks")
    try:
        train = tcache.read(2, "stock:train", last_op=True)
        print(f"t-cache:      tracks={tracks.value}, train={train.value}"
              f"{' (repaired by read-through)' if train.retried else ''}")
        print("  -> the tracks' dependency list demanded the newer train version;")
        print("     RETRY treated the stale hit as a miss and served fresh data")
    except InconsistencyDetected as error:
        print(f"t-cache aborted the read: {error}")
    print()


def part2_workload() -> None:
    print("=" * 72)
    print("Part 2: the co-purchase workload (paper §V-B)")
    print("=" * 72)
    workload = realistic_workload("amazon")
    rows = []
    for k in (0, 1, 3, 5):
        config = ColumnConfig(
            seed=11, duration=12.0, warmup=4.0,
            deplist_max=k, strategy=Strategy.RETRY,
        )
        result = run_column(config, workload)
        rows.append(
            {
                "deplist k": k,
                "inconsistency": f"{result.inconsistency_ratio:.2%}",
                "hit ratio": f"{result.hit_ratio:.2%}",
                "db reads/s": f"{result.db_access_rate:.0f}",
            }
        )
    print(format_table(rows, title="retailer workload: inconsistency vs k (RETRY)"))
    print("\nlonger dependency lists detect and repair more stale reads at")
    print("nearly no cost in hit ratio or backend load (paper Fig. 7c).")


if __name__ == "__main__":
    part1_anomaly()
    part2_workload()
