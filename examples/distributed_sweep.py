#!/usr/bin/env python
"""Distributed sweeps: a coordinator, expendable workers, identical bytes.

The sweep engine's grids are embarrassingly parallel, and since PR 4 they
no longer stop at one process tree: ``run_sweep(spec, dispatch=...)``
serves the grid as a durable work queue over TCP, and any number of
workers — on any hosts that can reach the coordinator — pull chunks,
execute points, and stream results back.  Three properties matter:

* **Determinism.** Points travel as portable JSON, results come back keyed
  by point index, and the coordinator reassembles them in spec order — so
  the distributed artifact is byte-identical to a serial ``jobs=1`` run.
* **Fault tolerance.** Chunks are *leases*: a worker that dies mid-chunk
  (its TCP connection drops) or goes silent past the lease timeout has its
  unfinished points re-queued.  Results it already streamed are kept.
* **Same executor surface.** The capacity-planning grid below is a plain
  ``SweepSpec``; swapping ``jobs=`` for ``dispatch=`` is the whole change.

This example stays on loopback so it runs anywhere: the "remote" workers
are threads, one of them rigged with a FaultPlan to disconnect mid-run.
Across real hosts the shape is identical, via the CLI::

    # on the coordinator host
    python -m repro.experiments scenario --dispatch 0.0.0.0:7643 --json out.json

    # on each worker host (same package version, any number of them)
    python -m repro.experiments worker --connect COORDINATOR:7643

Run:  python examples/distributed_sweep.py
"""

import threading

from repro.dispatch import Coordinator, DispatchSpec, FaultPlan, run_worker
from repro.experiments.report import normalized_artifact, print_table
from repro.experiments.scenarios import backend_rows
from repro.experiments.sweep import run_sweep
from repro.scenario import capacity_planning_sweep


def main() -> None:
    # A real capacity question as a grid: how do per-backend load and
    # inconsistency move when client traffic doubles, and how much does
    # sharding the backends buy back?  (Scaled down to run in seconds.)
    spec = capacity_planning_sweep(
        regions=2,
        edges_per_region=2,
        objects_per_region=150,
        load_factors=(0.5, 1.0, 2.0),
        shard_options=(1, 2),
        duration=4.0,
        warmup=1.0,
    )
    print(f"grid: {len(spec)} scenario points ({spec.description})\n")

    # --- the distributed run: coordinator + 3 loopback workers ----------
    coordinator = Coordinator(
        spec, DispatchSpec(port=0, chunk_size=2, lease_timeout=15.0)
    )
    host, port = coordinator.address
    workers = [
        threading.Thread(
            target=run_worker,
            args=(host, port),
            kwargs={"name": "steady-0"},
            daemon=True,
        ),
        threading.Thread(
            target=run_worker,
            args=(host, port),
            kwargs={"name": "steady-1"},
            daemon=True,
        ),
        threading.Thread(
            # This one is rigged: it drops its connection after one point,
            # like a spot instance being reclaimed.  The coordinator
            # re-leases whatever it was holding.
            target=run_worker,
            args=(host, port),
            kwargs={
                "name": "flaky",
                "faults": FaultPlan(kind="disconnect", after_points=1),
            },
            daemon=True,
        ),
    ]
    for worker in workers:
        worker.start()
    distributed = coordinator.serve()
    for worker in workers:
        worker.join(timeout=30)
    stats = coordinator.queue.stats
    print(
        f"distributed: {len(distributed.results)} points from "
        f"{distributed.jobs} workers in {distributed.wall_clock_seconds:.1f}s "
        f"({stats.chunks_assigned} chunk(s) assigned, "
        f"{stats.chunks_reassigned} reassigned after the flaky worker dropped)\n"
    )

    # --- determinism: the serial run must produce the same bytes --------
    serial = run_sweep(spec, jobs=1)
    assert normalized_artifact(distributed) == normalized_artifact(serial), (
        "determinism violated!"
    )
    print("distributed artifact is byte-identical to the jobs=1 run\n")

    # --- the capacity answer, per backend -------------------------------
    rows = []
    for point, result in distributed.pairs():
        rows.extend(backend_rows(point.label, result))
    print_table(
        rows,
        title="Capacity grid: per-backend load and consistency "
        "(load multiplier x shard count)",
    )


if __name__ == "__main__":
    main()
