#!/usr/bin/env python
"""A routed backend tier: regional databases behind regional edge fleets.

PR 2 made the *edge* side declarative; this example shows the backend side
catching up. A ``ScenarioSpec`` now carries a tier of ``BackendSpec``s plus
a placement from edge to backend: two regional databases (one of them
sharded), each serving a metro edge with a clean invalidation channel and
an outskirts edge with a lossy one. Versions are only ordered within a
backend, so the consistency monitor classifies each region against its own
backend's serialization graph while still reporting one fleet-wide view.

The same spec round-trips through JSON — ``spec.as_dict()`` written to a
file replays with ``python -m repro.experiments scenario --spec file.json``.

Run:  python examples/multi_backend.py
"""

import json
import tempfile

from repro import run_scenario
from repro.experiments.report import print_table
from repro.scenario import ScenarioSpec, regional_backends_scenario


def main() -> None:
    spec = regional_backends_scenario(
        regions=2,
        edges_per_region=2,
        objects_per_region=400,
        shards=2,
        duration=20.0,
        warmup=5.0,
        max_loss=0.4,
    )
    print(f"running scenario {spec.name!r}: {spec.description}")
    print(
        f"  {len(spec)} edges on {len(spec.backends)} backends, "
        f"{spec.total_time:g}s simulated"
    )
    for edge in spec.edges:
        print(f"    {edge.name} -> {spec.placement[edge.name]}")
    print()

    result = run_scenario(spec)

    print_table(
        [
            {
                "edge": edge_spec.name,
                "backend": spec.placement[edge_spec.name],
                "loss": f"{edge_spec.invalidation_loss:.0%}",
                "read_txns": edge.counts.total,
                # T-Cache's ABORT strategy turns would-be inconsistencies
                # into detections + aborts; lossier channels abort more.
                "detections": edge.detections_eq1 + edge.detections_eq2,
                "abort_ratio": f"{edge.abort_ratio:.2%}",
                "hit_ratio": f"{edge.hit_ratio:.1%}",
            }
            for edge_spec, edge in result.pairs()
        ],
        title="per-edge view (each region pays for its own channels)",
    )
    print()
    print_table(
        [
            {
                "backend": aggregate.name,
                "edges": len(aggregate.edges),
                "shards": spec.backend(aggregate.name).shards,
                "update_commits": aggregate.update_commits,
                "read_load_per_s": round(aggregate.read_load, 1),
                "abort_ratio": f"{aggregate.abort_ratio:.2%}",
            }
            for aggregate in result.backends
        ],
        title="per-backend view (independent version namespaces)",
    )
    print()
    fleet = result.fleet
    print_table(
        [
            {
                "read_txns": fleet.counts.total,
                "inconsistency": f"{fleet.inconsistency_ratio:.2%}",
                "update_commits": fleet.update_commits,
                "backend_reads_per_s": round(fleet.backend_read_rate, 1),
            }
        ],
        title="fleet aggregates (one monitor across the whole tier)",
    )

    # The spec is data: write it out and point the CLI at it to replay.
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as handle:
        json.dump(spec.as_dict(), handle, indent=2)
    print()
    print("replay this exact topology with:")
    print(f"  python -m repro.experiments scenario --spec {handle.name}")


if __name__ == "__main__":
    main()
