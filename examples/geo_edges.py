#!/usr/bin/env python
"""Geo-skewed edge fleet: the scenario API's headline use case.

Three regional edge caches, each with its own hot key slice (disjoint from
the other regions), occasionally reading a globally shared segment that a
write-heavy origin edge keeps updating. Each region's invalidation channel
degrades with distance — more loss, more latency — so the same shared data
is more stale the farther the region sits from the origin.

The single-column API could not express any of this: it had exactly one
cache, one channel and one client population. With ``ScenarioSpec`` the
topology is data, and ``run_scenario`` returns both per-edge results and
fleet aggregates from one shared consistency monitor.

Run:  python examples/geo_edges.py
"""

from repro import geo_skewed_scenario, run_scenario
from repro.experiments.report import print_table


def main() -> None:
    spec = geo_skewed_scenario(
        regions=3,
        objects_per_region=600,
        shared_objects=200,
        remote_read_fraction=0.15,
        duration=20.0,
        warmup=5.0,
    )
    print(f"running scenario {spec.name!r}: {spec.description}")
    print(f"  {len(spec)} edges, {spec.total_time:g}s simulated\n")

    result = run_scenario(spec)

    print_table(
        [
            {
                "edge": edge_spec.name,
                "loss": f"{edge_spec.invalidation_loss:.0%}",
                "latency_ms": round(1000 * edge_spec.invalidation_latency_mean),
                "read_txns": edge.counts.total,
                "inconsistency": f"{edge.inconsistency_ratio:.2%}",
                "detection": f"{edge.detection_ratio:.1%}",
                "hit_ratio": f"{edge.hit_ratio:.1%}",
                "db_reads_per_s": round(edge.db_access_rate, 1),
            }
            for edge_spec, edge in result.pairs()
        ],
        title="per-edge view (worse channels -> more staleness pressure)",
    )

    fleet = result.fleet
    print()
    print_table(
        [
            {
                "read_txns": fleet.counts.total,
                "inconsistency": f"{fleet.inconsistency_ratio:.2%}",
                "detection": f"{fleet.detection_ratio:.1%}",
                "hit_ratio": f"{fleet.hit_ratio:.1%}",
                "backend_reads_per_s": round(fleet.backend_read_rate, 1),
                "update_commits": fleet.update_commits,
                "inconsistency_var": f"{fleet.inconsistency_variance:.2e}",
            }
        ],
        title="fleet aggregates (one shared database + monitor)",
    )
    print()
    print("The origin edge stays near-consistent while distant regions pay")
    print("for their lossy channels; T-Cache's dependency checks catch the")
    print("stale shared-segment reads that the regions would otherwise serve.")


if __name__ == "__main__":
    main()
