#!/usr/bin/env python
"""Social network scenario: group membership anomalies (§II).

"In a social network, an inconsistency with unexpected results can occur if
a user x's record says it belongs to a certain group, but that group's
record does not include x."

Part 1 replays exactly that against a plain cache and T-Cache. Part 2 runs
the Orkut-like friendship workload from §V-B and compares the three
inconsistency-handling strategies, mirroring Figure 8.

Run:  python examples/social_network.py
"""

from repro import (
    CacheServer,
    ColumnConfig,
    Database,
    DatabaseConfig,
    InconsistencyDetected,
    Simulator,
    Strategy,
    TCache,
    TimingConfig,
    run_column,
)
from repro.experiments.realistic import realistic_workload
from repro.experiments.report import format_table


def part1_membership_anomaly() -> None:
    print("=" * 72)
    print("Part 1: the group-membership anomaly")
    print("=" * 72)

    sim = Simulator()
    db = Database(sim, DatabaseConfig(deplist_max=5, timing=TimingConfig(0, 0, 0, 0)))
    db.load({
        "user:alice": {"groups": []},
        "group:hiking": {"members": []},
    })

    plain = CacheServer(sim, db, name="plain")
    tcache = TCache(sim, db, strategy=Strategy.ABORT, name="t-cache")
    for cache in (plain, tcache):
        cache.read(1, "group:hiking", last_op=True)  # warm the group record

    # Alice joins the hiking group: ONE transaction updates both records.
    process = db.execute_update(
        read_keys=["user:alice", "group:hiking"],
        writes={
            "user:alice": {"groups": ["hiking"]},
            "group:hiking": {"members": ["alice"]},
        },
    )
    sim.run()
    assert process.ok
    version = process.value.txn_id
    print("committed: alice joined group:hiking (single transaction)")
    print("invalidation for 'group:hiking' was LOST\n")
    from repro.db.invalidation import InvalidationRecord

    # Only the user-record invalidation arrives.
    record = InvalidationRecord("user:alice", version, version, sim.now)
    plain.handle_invalidation(record)
    tcache.handle_invalidation(record)

    # A viewer loads Alice's profile and then the group page.
    alice = plain.read(2, "user:alice")
    group = plain.read(2, "group:hiking", last_op=True)
    print(f"plain cache:  alice.groups={alice.value['groups']}, "
          f"hiking.members={group.value['members']}")
    print("  -> Alice claims membership; the group denies it. Confusing UI.\n")

    alice = tcache.read(2, "user:alice")
    try:
        tcache.read(2, "group:hiking", last_op=True)
        print("t-cache: transaction committed (unexpected)")
    except InconsistencyDetected as error:
        print(f"t-cache ABORTED the profile view: inconsistency on {error.key!r}")
        print("  -> the app retries and renders a coherent page (both records")
        print("     fresh after the retry forces a miss or the entry expires)")
    print()


def part2_strategies() -> None:
    print("=" * 72)
    print("Part 2: friendship workload, strategy comparison (paper Fig. 8)")
    print("=" * 72)
    workload = realistic_workload("orkut")
    rows = []
    for strategy in (Strategy.ABORT, Strategy.EVICT, Strategy.RETRY):
        config = ColumnConfig(
            seed=13, duration=12.0, warmup=4.0, deplist_max=3, strategy=strategy
        )
        result = run_column(config, workload)
        shares = result.class_shares()
        rows.append(
            {
                "strategy": strategy.name,
                "consistent": f"{shares['consistent']:.1%}",
                "inconsistent": f"{shares['inconsistent']:.1%}",
                "aborted": f"{shares['aborted_necessary'] + shares['aborted_unnecessary']:.1%}",
                "detection": f"{result.detection_ratio:.1%}",
            }
        )
    print(format_table(rows, title="orkut-like workload, k=3"))
    print("\nEVICT removes repeat offenders; RETRY additionally converts")
    print("most aborts into consistent commits via read-through (Fig. 8).")


if __name__ == "__main__":
    part1_membership_anomaly()
    part2_strategies()
