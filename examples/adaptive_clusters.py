#!/usr/bin/env python
"""Adaptivity demo: T-Cache tracks changing cluster structure (§V-A3).

Reproduces the dynamics of the paper's Figures 4 and 5 in one run: the
workload starts uniform (dependency lists useless), snaps into perfect
clusters mid-run (detection converges within seconds), and then the
clusters start drifting (each shift causes a brief inconsistency spike
that LRU-maintained dependency lists absorb).

Run:  python examples/adaptive_clusters.py
"""

from repro import (
    ColumnConfig,
    DriftingClusterWorkload,
    PerfectClusterWorkload,
    Strategy,
    UniformWorkload,
    run_column,
)
from repro.experiments.report import format_table


class ThreePhaseWorkload:
    """uniform -> perfectly clustered -> drifting clusters."""

    def __init__(self, n_objects: int, t_cluster: float, t_drift: float,
                 drift_interval: float) -> None:
        self._uniform = UniformWorkload(n_objects)
        self._clustered = PerfectClusterWorkload(n_objects, cluster_size=5)
        self._drifting = DriftingClusterWorkload(
            n_objects, cluster_size=5, shift_interval=drift_interval
        )
        self.t_cluster = t_cluster
        self.t_drift = t_drift

    def access_set(self, rng, now):
        if now < self.t_cluster:
            return self._uniform.access_set(rng, now)
        if now < self.t_drift:
            return self._clustered.access_set(rng, now)
        return self._drifting.access_set(rng, now - self.t_drift)

    def all_keys(self):
        return self._uniform.all_keys()


def main() -> None:
    workload = ThreePhaseWorkload(
        n_objects=1000, t_cluster=30.0, t_drift=70.0, drift_interval=20.0
    )
    config = ColumnConfig(
        seed=23, duration=130.0, warmup=0.0,
        deplist_max=5, strategy=Strategy.ABORT, monitor_window=5.0,
    )
    print("simulating 130s: uniform (0-30s) -> clustered (30-70s) -> "
          "drifting every 20s (70s+)...\n")
    result = run_column(config, workload)

    rows = [
        {
            "window": f"{row['time']:.0f}s",
            "consistent/s": round(row["consistent"], 1),
            "inconsistent/s": round(row["inconsistent"], 1),
            "aborted/s": round(
                row["aborted_necessary"] + row["aborted_unnecessary"], 1
            ),
            "inconsistency": f"{row['inconsistency_ratio']:.1%}",
        }
        for row in result.series
    ]
    print(format_table(rows, title="per-5s-window classification rates"))
    print()
    print("phase 1 (0-30s):  uniform access, dependency lists useless —")
    print("                  inconsistencies slip through, few aborts")
    print("phase 2 (30-70s): clusters form; detection converges within")
    print("                  seconds (paper Fig. 4)")
    print("phase 3 (70s+):   clusters drift; each 20s shift causes a brief")
    print("                  spike that converges back (paper Fig. 5)")


if __name__ == "__main__":
    main()
