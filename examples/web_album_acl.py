#!/usr/bin/env python
"""Web album scenario: access-control lists and photos (§II).

"Web albums maintain picture data and access control lists (ACLs) and it is
important that ACL and album updates are consistent (the classical example
involves removing one's boss from the album ACL and then adding unflattering
pictures)."

The dangerous interleaving: the album owner removes the boss from the ACL
and adds photos in one transaction; the boss's photo-viewer session reads a
*stale cached ACL* (still listing the boss) together with the *fresh photo
list* — exactly the mix that leaks the new photos. A plain edge cache serves
it; T-Cache detects the dependency violation and refuses.

Run:  python examples/web_album_acl.py
"""

from repro import (
    CacheServer,
    Database,
    DatabaseConfig,
    InconsistencyDetected,
    Simulator,
    Strategy,
    TCache,
    TimingConfig,
)
from repro.db.invalidation import InvalidationRecord


def build_column():
    sim = Simulator()
    db = Database(sim, DatabaseConfig(deplist_max=5, timing=TimingConfig(0, 0, 0, 0)))
    db.load({
        "album:acl": ["owner", "boss"],
        "album:photos": ["beach.jpg"],
    })
    return sim, db


def viewer_session(cache, txn_id):
    """The boss's viewer: read the ACL, then the photos."""
    acl = cache.read(txn_id, "album:acl")
    photos = cache.read(txn_id, "album:photos", last_op=True)
    return acl.value, photos.value


def main() -> None:
    sim, db = build_column()
    plain = CacheServer(sim, db, name="plain")
    tcache = TCache(sim, db, strategy=Strategy.EVICT, name="t-cache")

    # Both caches have served the album before: ACL and photos are cached.
    for cache in (plain, tcache):
        viewer_session(cache, txn_id=1)

    # The owner removes the boss and adds party photos — one transaction.
    process = db.execute_update(
        read_keys=["album:acl", "album:photos"],
        writes={
            "album:acl": ["owner"],
            "album:photos": ["beach.jpg", "party1.jpg", "party2.jpg"],
        },
    )
    sim.run()
    assert process.ok
    version = process.value.txn_id
    print("owner committed: boss removed from ACL + party photos added")

    # The photo-list invalidation arrives; the ACL one is lost.
    record = InvalidationRecord("album:photos", version, version, sim.now)
    plain.handle_invalidation(record)
    tcache.handle_invalidation(record)
    print("invalidation for 'album:acl' was LOST -> caches hold a stale ACL\n")

    # --- Plain cache: the leak ---------------------------------------
    acl, photos = viewer_session(plain, txn_id=2)
    print(f"plain cache served: acl={acl}, photos={photos}")
    if "boss" in acl and "party1.jpg" in photos:
        print("  -> LEAK: the boss passes the stale ACL check and sees the")
        print("     fresh party photos.\n")

    # --- T-Cache: the save -------------------------------------------
    try:
        acl, photos = viewer_session(tcache, txn_id=2)
        print(f"t-cache served: acl={acl}, photos={photos}")
    except InconsistencyDetected as error:
        print("t-cache ABORTED the viewer session:")
        print(f"  {error}")
        print("  -> the fresh photo list's dependency list demands the newer")
        print("     ACL version; the stale ACL was evicted (EVICT strategy).")

    # After the eviction, the next session reads a coherent album.
    acl, photos = viewer_session(tcache, txn_id=3)
    print(f"\nnext session (post-eviction): acl={acl}, photos={photos}")
    if "boss" not in acl:
        print("  -> coherent: the boss is gone before the photos are visible.")


if __name__ == "__main__":
    main()
