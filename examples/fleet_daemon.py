"""The fleet daemon end to end: priorities, a kill, and a journaled resume.

One process plays every role so the whole story fits in a script: a
daemon with a journal directory and an HMAC secret, a two-worker pool,
and two named sweeps submitted with different priorities. Halfway
through, the daemon is shut down hard and a *new* daemon is started
against the same journal directory — the sweeps finish anyway, the
artifacts come out byte-identical to a serial `jobs=1` run, and the
status table proves the resumed points were never executed twice.

In production the pieces run on separate hosts:

    REPRO_FLEET_SECRET=... python -m repro.experiments fleet serve \
        --port 7650 --journal-dir ./journals
    python -m repro.experiments worker --connect DAEMON:7650 --max-idle 300
    python -m repro.experiments fig3 --fleet DAEMON:7650 --fleet-priority 5

Run:  python examples/fleet_daemon.py
"""

from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import replace

from repro import ColumnConfig, PerfectClusterWorkload
from repro.dispatch import FleetConfig, FleetDaemon, FleetSpec, run_worker
from repro.experiments.report import normalized_artifact
from repro.experiments.sweep import SweepPoint, SweepSpec, derive_seed, run_sweep

SECRET = "example-fleet-secret"


def make_spec(name: str, n_columns: int, root_seed: int) -> SweepSpec:
    workload = PerfectClusterWorkload(n_objects=100, cluster_size=5)
    config = ColumnConfig(seed=1, duration=1.0, warmup=0.4)
    return SweepSpec(
        name=name,
        root_seed=root_seed,
        points=[
            SweepPoint(
                label=f"col{index}",
                config=replace(config, seed=derive_seed(root_seed, index)),
                workload=workload,
                params={"index": index},
            )
            for index in range(n_columns)
        ],
    )


def start_daemon(journal_dir: str, port: int = 0) -> FleetDaemon:
    daemon = FleetDaemon(
        FleetConfig(port=port, journal_dir=journal_dir, secret=SECRET)
    )
    daemon.start()
    return daemon


def start_workers(daemon: FleetDaemon, count: int) -> list[threading.Thread]:
    host, port = daemon.address
    threads = [
        threading.Thread(
            target=run_worker,
            args=(host, port),
            kwargs={
                "name": f"worker-{index}",
                "secret": SECRET,
                "max_idle": 3.0,  # a fleet daemon never says "done"
                "heartbeat_interval": 0.5,
            },
            daemon=True,
        )
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    return threads


def comparable(result) -> str:
    # The shared definition of "byte-identical modulo run environment".
    return normalized_artifact(result)


def main() -> None:
    bulk = make_spec("bulk-grid", n_columns=4, root_seed=7)
    urgent = make_spec("urgent-fix", n_columns=3, root_seed=11)

    print("serial baselines (jobs=1)…")
    baselines = {
        spec.name: comparable(run_sweep(spec, jobs=1))
        for spec in (bulk, urgent)
    }

    with tempfile.TemporaryDirectory(prefix="fleet-journal-") as journal_dir:
        daemon = start_daemon(journal_dir)
        host, port = daemon.address
        print(f"daemon at {host}:{port}, journals in {journal_dir}")
        workers = start_workers(daemon, count=2)

        results: dict[str, object] = {}

        def submit(spec: SweepSpec, priority: int) -> None:
            results[spec.name] = run_sweep(
                spec,
                dispatch=FleetSpec(
                    host=host,
                    port=port,
                    secret=SECRET,
                    priority=priority,
                    poll_interval=0.2,
                    wait_timeout=300.0,
                ),
            )

        # The urgent sweep outranks the bulk one: the daemon drains it
        # first even though both share the worker pool.
        submitters = [
            threading.Thread(target=submit, args=(bulk, 0), daemon=True),
            threading.Thread(target=submit, args=(urgent, 5), daemon=True),
        ]
        for thread in submitters:
            thread.start()

        # Kill the daemon as soon as anything is durable, mid-everything.
        while not any(row["completed"] for row in daemon.queue.status_rows()):
            time.sleep(0.05)
        daemon.shutdown()
        print("daemon killed mid-sweep; restarting against the journal…")

        # Rebind the same port (SO_REUSEADDR): the submitters dial a
        # fresh connection per poll, so to them the restart is invisible
        # — the new daemon restored both sweeps from the journal before
        # accepting its first frame.
        daemon = start_daemon(journal_dir, port=port)
        start_workers(daemon, count=2)
        for thread in submitters:
            thread.join()
        for spec in (bulk, urgent):
            assert comparable(results[spec.name]) == baselines[spec.name], (
                f"{spec.name}: fleet-served artifact diverged from jobs=1"
            )

        print("\nfleet status after the drill:")
        for row in daemon.queue.status_rows():
            print(
                f"  {row['sweep']}: {row['state']}, "
                f"{row['completed']}/{row['total']} done "
                f"({row['resumed']} resumed from journal, "
                f"{row['executed']} executed after restart)"
            )
        print(
            "\nboth artifacts byte-identical to jobs=1; "
            "journaled points were not re-executed"
        )
        daemon.shutdown()
        for thread in workers:
            thread.join(timeout=30.0)


if __name__ == "__main__":
    main()
