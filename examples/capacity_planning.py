#!/usr/bin/env python
"""Capacity planning: tune the dependency-list bound for *your* workload.

§III: "we require the developer to tune the length so that the frequency of
errors is reduced to an acceptable level, reasoning about the trade-off
(size versus accuracy) ... Intuitively, dependency lists should be roughly
the same size as the size of the workload's clusters."

This example shows the tuning loop this library supports:

1. build a production-like workload (here: mixed cluster sizes, the §VII
   scenario where one global k cannot fit both);
2. replay identical access sequences (fixed seeds) across candidate k
   values and read off the inconsistency/overhead trade-off;
3. profile staleness with the analysis probe to understand what the
   remaining inconsistencies are made of;
4. apply the §VII per-object overrides for the large-cluster objects and
   measure the win at unchanged average space.

(For replaying *captured* traces across configurations — e.g. from a
production log — see ``repro.workloads.trace``.)

Run:  python examples/capacity_planning.py
"""

from repro import ColumnConfig, Strategy
from repro.experiments.report import format_table
from repro.experiments.runner import build_column, collect_result
from repro.monitor.analysis import StalenessProbe
from repro.workloads.base import key_for
from repro.workloads.synthetic import PerfectClusterWorkload


class MixedClusterWorkload:
    """Half the objects live in clusters of 4, half in clusters of 8."""

    def __init__(self, n_objects: int = 800) -> None:
        half = n_objects // 2
        self.small = PerfectClusterWorkload(half, cluster_size=4, txn_size=4)
        self.large = PerfectClusterWorkload(half, cluster_size=8, txn_size=8)
        self._large_offset = half
        self.n_objects = n_objects

    def access_set(self, rng, now):
        if rng.random() < 0.5:
            return self.small.access_set(rng, now)
        shifted = self.large.access_set(rng, now)
        return [key_for(int(key[1:]) + self._large_offset) for key in shifted]

    def all_keys(self):
        return [key_for(i) for i in range(self.n_objects)]

    def large_cluster_keys(self):
        return [key_for(i + self._large_offset) for i in range(self.n_objects // 2)]


def run_once(workload, k: int, *, overrides: bool = False):
    config = ColumnConfig(
        seed=51, duration=15.0, warmup=5.0, deplist_max=k, strategy=Strategy.ABORT
    )
    column = build_column(config, workload)
    if overrides:
        # Spend the budget unevenly: small-cluster objects need only k=3,
        # large-cluster objects get k=7 (same average as k=5 everywhere).
        for key in workload.all_keys():
            column.database.set_deplist_bound(key, 3)
        for key in workload.large_cluster_keys():
            column.database.set_deplist_bound(key, 7)
    probe = StalenessProbe()
    column.database.add_commit_listener(probe.record_update)
    column.cache.add_transaction_listener(probe.record_read_only)
    column.sim.run(until=config.total_time)
    return collect_result(column), probe.report()


def main() -> None:
    workload = MixedClusterWorkload()

    print("step 1-2: sweep the global dependency-list bound k\n")
    rows = []
    for k in (1, 3, 5, 7):
        result, report = run_once(workload, k)
        rows.append(
            {
                "k": k,
                "detection": f"{result.detection_ratio:.1%}",
                "inconsistency": f"{result.inconsistency_ratio:.2%}",
                "stale reads": f"{report.stale_ratio:.2%}",
                "shallow staleness": f"{report.shallow_fraction:.0%}",
            }
        )
    print(format_table(rows, title="global bound sweep (mixed 4/8 clusters)"))
    print("\nk=3 covers the small clusters; the large clusters need k=7 —")
    print("exactly the §VII observation that one global bound wastes space.\n")

    print("step 3-4: per-object overrides (small->3, large->7; avg = 5)\n")
    uniform5, _ = run_once(workload, 5)
    tuned, report = run_once(workload, 5, overrides=True)
    comparison = [
        {
            "configuration": "global k=5",
            "detection": f"{uniform5.detection_ratio:.1%}",
            "inconsistency": f"{uniform5.inconsistency_ratio:.2%}",
        },
        {
            "configuration": "per-object 3/7 (same avg)",
            "detection": f"{tuned.detection_ratio:.1%}",
            "inconsistency": f"{tuned.inconsistency_ratio:.2%}",
        },
    ]
    print(format_table(comparison, title="same space budget, spent unevenly"))
    if tuned.detection_ratio >= uniform5.detection_ratio:
        print("\nthe uneven split matches or beats the uniform bound at the")
        print("same average list length (§VII's dynamic-sizing motivation).")


if __name__ == "__main__":
    main()
