#!/usr/bin/env python
"""Quickstart: run a full T-Cache column in a few lines.

Builds the paper's Figure 2 setup — a transactional database with two-phase
commit, a lossy asynchronous invalidation channel (20 % drops), a T-Cache
edge server, open-loop update clients (100 txn/s) and read-only clients
(500 txn/s) — runs it for half a simulated minute, and reports what the
consistency monitor saw.

Run:  python examples/quickstart.py
"""

from repro import (
    ColumnConfig,
    PerfectClusterWorkload,
    Strategy,
    run_column,
)


def main() -> None:
    # 1000 objects in clusters of 5: the paper's "perfectly clustered"
    # regime, where T-Cache with k=5 detects *every* inconsistency.
    workload = PerfectClusterWorkload(n_objects=1000, cluster_size=5)

    config = ColumnConfig(
        seed=7,
        duration=30.0,          # measured simulated seconds
        warmup=5.0,             # cache fill, excluded from metrics
        deplist_max=5,          # the paper's k
        strategy=Strategy.EVICT,
        invalidation_loss=0.2,  # §IV: 20 % of invalidations dropped
    )

    print("running a 35s simulated column (single cache, single database)...")
    result = run_column(config, workload)

    counts = result.counts
    print()
    print(f"read-only transactions:   {counts.total}")
    print(f"  committed consistent:   {counts.consistent}")
    print(f"  committed inconsistent: {counts.inconsistent}")
    print(f"  aborted (necessary):    {counts.aborted_necessary}")
    print(f"  aborted (unnecessary):  {counts.aborted_unnecessary}")
    print()
    print(f"inconsistency ratio:      {result.inconsistency_ratio:.2%}")
    print(f"detection ratio:          {result.detection_ratio:.2%}")
    print(f"cache hit ratio:          {result.hit_ratio:.2%}")
    print(f"invalidations dropped:    {result.channel_stats.dropped} "
          f"of {result.channel_stats.sent} "
          f"({result.channel_stats.loss_ratio:.0%})")
    print(f"update transactions:      {result.db_stats.committed}")
    print()
    if counts.inconsistent == 0:
        print("zero inconsistent commits: with stable clusters the size of its")
        print("dependency lists, T-Cache converges to perfect detection (§V-A3).")


if __name__ == "__main__":
    main()
